// Package spec defines serial object specifications: the data types whose
// serial behavior the transaction system must appear to preserve.
//
// In the paper's model (§2.2.2) a serial object automaton S_X answers each
// access invocation with a REQUEST_COMMIT(T, v); the sequences of operations
// (T, v) it can exhibit define the type of X. This package captures a type
// as a deterministic state machine (Init/Apply) together with a conflict
// relation on operations derived from backward commutativity (§6.1).
//
// Section 3 of the paper specializes everything to read/write objects;
// Register is that specialization. The remaining types (Counter, Account,
// Set, AppendLog, Queue) exercise the §6 generalization to arbitrary data
// types, where commuting operations need not conflict.
package spec

import (
	"fmt"
	"math/rand"
)

// ValueKind discriminates the variants of Value.
type ValueKind uint8

// Value kinds. VOK is the distinguished "ok" return of blind updates
// (the paper's OK); VNil is the absence of a value.
const (
	VNil ValueKind = iota
	VOK
	VInt
	VBool
	VStr
)

// Value is a return value of an operation, or an operation argument. It is
// a small comparable sum type so that events and operations can be compared
// with == and used as map keys.
type Value struct {
	Kind ValueKind
	Int  int64
	Str  string
}

// Convenience constructors for Value.
var (
	Nil = Value{Kind: VNil}
	OK  = Value{Kind: VOK}
)

// Int returns an integer Value.
func Int(v int64) Value { return Value{Kind: VInt, Int: v} }

// Bool returns a boolean Value.
func Bool(b bool) Value {
	if b {
		return Value{Kind: VBool, Int: 1}
	}
	return Value{Kind: VBool}
}

// Str returns a string Value.
func Str(s string) Value { return Value{Kind: VStr, Str: s} }

// AsBool reports the boolean content of v (false for non-bool kinds).
func (v Value) AsBool() bool { return v.Kind == VBool && v.Int != 0 }

// String renders the value for traces and error messages.
func (v Value) String() string {
	switch v.Kind {
	case VNil:
		return "nil"
	case VOK:
		return "OK"
	case VInt:
		return fmt.Sprintf("%d", v.Int)
	case VBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	case VStr:
		return fmt.Sprintf("%q", v.Str)
	}
	return fmt.Sprintf("Value(kind=%d)", v.Kind)
}

// OpKind identifies the operation requested by an access. One shared
// enumeration serves all specifications; each Spec supports a subset.
type OpKind uint8

// Operation kinds, grouped by the specification that interprets them.
const (
	OpInvalid OpKind = iota

	// Register (read/write object, §3.1).
	OpRead
	OpWrite

	// Counter.
	OpIncrement
	OpDecrement
	OpGet

	// Account (Weihl's bank account).
	OpDeposit
	OpWithdraw
	OpBalance

	// Set of integers.
	OpInsert
	OpRemove
	OpMember
	OpSize

	// AppendLog.
	OpAppend
	OpLen

	// FIFO Queue.
	OpEnq
	OpDeq
)

var opKindNames = map[OpKind]string{
	OpInvalid:   "invalid",
	OpRead:      "read",
	OpWrite:     "write",
	OpIncrement: "inc",
	OpDecrement: "dec",
	OpGet:       "get",
	OpDeposit:   "deposit",
	OpWithdraw:  "withdraw",
	OpBalance:   "balance",
	OpInsert:    "insert",
	OpRemove:    "remove",
	OpMember:    "member",
	OpSize:      "size",
	OpAppend:    "append",
	OpLen:       "len",
	OpEnq:       "enq",
	OpDeq:       "deq",
}

// String returns the lowercase mnemonic for the op kind.
func (k OpKind) String() string {
	if s, ok := opKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is an operation invocation: a kind plus its argument. Following the
// paper, all parameters of an access are encoded in its (interned) name, so
// Op is comparable and hashable.
type Op struct {
	Kind OpKind
	Arg  Value
}

// String renders the operation for traces.
func (o Op) String() string {
	if o.Arg.Kind == VNil {
		return o.Kind.String()
	}
	return fmt.Sprintf("%s(%s)", o.Kind, o.Arg)
}

// OpVal is an operation paired with its return value — the paper's
// "operation (T, v)" with the transaction name abstracted away. Conflict
// relations are defined on OpVals because commutativity depends on return
// values (a failed withdrawal commutes differently from a successful one).
type OpVal struct {
	Op  Op
	Val Value
}

// String renders op=val.
func (ov OpVal) String() string { return fmt.Sprintf("%s=%s", ov.Op, ov.Val) }

// State is the abstract state of a serial object. Concrete specs use their
// own immutable representations; Apply must never mutate its argument.
type State any

// Spec is a serial object specification: a deterministic serial state
// machine plus a conservative conflict relation derived from backward
// commutativity.
//
// Determinism means each legal behavior perform(ξ) of the object extends by
// exactly one operation value for each invoked Op, namely the one Apply
// returns; perform(ξ (T,v)) is a behavior of the object iff v equals that
// value. All paper specifications used here are deterministic.
type Spec interface {
	// Name identifies the specification ("register", "counter", ...).
	Name() string

	// Init returns the initial state (the paper's initial value d).
	Init() State

	// Apply returns the successor state and return value of executing op in
	// state s. It must be a pure function of (s, op).
	Apply(s State, op Op) (State, Value)

	// Conflicts reports whether the operations a and b fail to commute
	// backward (§6.1). It must be conservative: if it returns false, a and b
	// must commute backward in every context. It is symmetric.
	Conflicts(a, b OpVal) bool

	// ReadOnly reports whether op never changes the object state. The
	// read/write locking objects of §5 use this to classify accesses into
	// read-class (shared lock) and update-class (exclusive lock).
	ReadOnly(op Op) bool

	// Encode renders a state canonically; two states are equivalent iff
	// their encodings are equal. Used by equieffectiveness testing.
	Encode(s State) string

	// RandOp draws a random supported operation; arguments are drawn from a
	// small domain so that collisions (and hence conflicts) actually occur.
	RandOp(r *rand.Rand) Op
}

// Replay runs ops through the specification from Init and returns the final
// state and the value returned by each operation.
func Replay(sp Spec, ops []Op) (State, []Value) {
	s := sp.Init()
	vals := make([]Value, len(ops))
	for i, op := range ops {
		s, vals[i] = sp.Apply(s, op)
	}
	return s, vals
}

// IsBehavior reports whether perform(ξ) is a behavior of sp, i.e. whether
// replaying the operations yields exactly the recorded return values. If it
// is not, the index of the first offending operation is returned.
func IsBehavior(sp Spec, xi []OpVal) (bool, int) {
	s := sp.Init()
	for i, ov := range xi {
		var v Value
		s, v = sp.Apply(s, ov.Op)
		if v != ov.Val {
			return false, i
		}
	}
	return true, -1
}

// ByName returns the built-in specification with the given name, or nil.
func ByName(name string) Spec {
	switch name {
	case "register":
		return Register{}
	case "counter":
		return Counter{}
	case "account":
		return Account{}
	case "set":
		return IntSet{}
	case "appendlog":
		return AppendLog{}
	case "queue":
		return Queue{}
	}
	return nil
}

// All returns one instance of every built-in specification.
func All() []Spec {
	return []Spec{Register{}, Counter{}, Account{}, IntSet{}, AppendLog{}, Queue{}}
}
