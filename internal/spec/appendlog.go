package spec

import (
	"fmt"
	"math/rand"
	"strings"
)

// AppendLog is an append-only sequence of integers with a length query.
// Appends return OK but do not commute with each other (the final sequence
// records their order), so this type shows that "blind update" alone is not
// enough for commutativity — the §6 construction must consult the type.
// len conflicts with append; len commutes with len.
type AppendLog struct{}

type logState []int64

// Name implements Spec.
func (AppendLog) Name() string { return "appendlog" }

// Init implements Spec.
func (AppendLog) Init() State { return logState(nil) }

// Apply implements Spec.
func (AppendLog) Apply(s State, op Op) (State, Value) {
	st := s.(logState)
	switch op.Kind {
	case OpAppend:
		out := make(logState, len(st)+1)
		copy(out, st)
		out[len(st)] = op.Arg.Int
		return out, OK
	case OpLen:
		return st, Int(int64(len(st)))
	default:
		panic(fmt.Sprintf("appendlog: unsupported op %s", op))
	}
}

// Conflicts implements Spec.
//
// Two appends of the same value commute (the resulting sequences are equal);
// appends of distinct values do not. len conflicts with append because its
// value pins the number of preceding appends.
func (AppendLog) Conflicts(a, b OpVal) bool {
	if a.Op.Kind == OpLen && b.Op.Kind == OpLen {
		return false
	}
	if a.Op.Kind == OpAppend && b.Op.Kind == OpAppend {
		return a.Op.Arg != b.Op.Arg
	}
	return true
}

// Encode implements Spec.
func (AppendLog) Encode(s State) string {
	st := s.(logState)
	parts := make([]string, len(st))
	for i, v := range st {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// RandOp implements Spec.
func (AppendLog) RandOp(r *rand.Rand) Op {
	if r.Intn(5) == 0 {
		return Op{Kind: OpLen}
	}
	return Op{Kind: OpAppend, Arg: Int(int64(r.Intn(4)))}
}

// ReadOnly implements Spec.
func (AppendLog) ReadOnly(op Op) bool { return op.Kind == OpLen }
