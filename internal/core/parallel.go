package core

import (
	"nestedsg/internal/event"
	"nestedsg/internal/tname"
)

// BuildParallel constructs the same SG(β) as Build, fanning the per-object
// conflict scans out over a bounded worker pool; workers ≤ 0 means
// GOMAXPROCS. One-shot wrapper over Checker.BuildParallel, which documents
// the construction and pools the worker state across calls.
func BuildParallel(tr *tname.Tree, b event.Behavior, workers int) *SG {
	return NewChecker(tr).BuildParallel(b, workers)
}

// BuildReducedParallel is BuildParallel with BuildReduced's register
// transitive-reduction fast path.
func BuildReducedParallel(tr *tname.Tree, b event.Behavior, workers int) *SG {
	return NewChecker(tr).BuildReducedParallel(b, workers)
}

// CheckParallel is Check with the SG construction fanned out over workers
// (see BuildParallel). Verdicts and certificates are identical to Check's.
func CheckParallel(tr *tname.Tree, b event.Behavior, workers int) *Result {
	return NewChecker(tr).CheckParallel(b, workers)
}
