package core

import (
	"runtime"
	"sync"

	"nestedsg/internal/event"
	"nestedsg/internal/simple"
	"nestedsg/internal/tname"
)

// edgeRec is one conflict edge discovered by a scan worker, already mapped
// to the children of the accesses' least common ancestor.
type edgeRec struct {
	parent   tname.TxID
	from, to tname.TxID
}

// BuildParallel constructs the same SG(β) as Build, fanning the per-object
// conflict scans out over a bounded worker pool. The linear pass (visibility,
// visible-operation collection, precedes(β)) stays sequential — it is cheap
// and order-sensitive — while the quadratic per-object scans, which dominate
// on contended workloads and are independent across objects, run
// concurrently. workers ≤ 0 means GOMAXPROCS.
//
// The result is structurally identical to Build's: canonical child
// numbering makes node indices, certificates and DOT output a function of
// the edge set alone, and the edge set does not depend on scan order.
func BuildParallel(tr *tname.Tree, b event.Behavior, workers int) *SG {
	return buildParallel(tr, b, false, workers)
}

// BuildReducedParallel is BuildParallel with BuildReduced's register
// transitive-reduction fast path.
func BuildReducedParallel(tr *tname.Tree, b event.Behavior, workers int) *SG {
	return buildParallel(tr, b, true, workers)
}

func buildParallel(tr *tname.Tree, b event.Behavior, reduced bool, workers int) *SG {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	st := prepare(tr, b)
	if workers > len(st.objs) {
		workers = len(st.objs)
	}
	if workers <= 1 {
		// Nothing to fan out; run the sequential scan.
		for _, x := range st.objs {
			scanObjectConflicts(tr.Spec(x), st.byObj[x], reduced, func(prev, cur event.AccessOp) {
				if p, u, u2, ok := conflictEdge(tr, prev, cur); ok {
					st.pg(p).addEdge(u, u2, EdgeConflict)
				}
			})
		}
		for _, g := range st.sg.parents {
			g.build()
		}
		return st.sg
	}

	// Each worker dedupes into a private edge set — on contended workloads
	// the scan emits the same (parent, from, to) triple once per conflicting
	// pair, so sharing a sink would serialize the workers on its lock and
	// leave the merge replaying hundreds of thousands of duplicates. The
	// merge below only ever sees each worker's unique edges. tname.Tree is
	// read-only during checks, so the LCA queries inside the workers are
	// safe.
	locals := make([]map[edgeRec]struct{}, workers)
	jobs := make(chan tname.ObjID)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seen := make(map[edgeRec]struct{})
			locals[w] = seen
			for x := range jobs {
				scanObjectConflicts(tr.Spec(x), st.byObj[x], reduced, func(prev, cur event.AccessOp) {
					if p, u, u2, ok := conflictEdge(tr, prev, cur); ok {
						seen[edgeRec{parent: p, from: u, to: u2}] = struct{}{}
					}
				})
			}
		}(w)
	}
	for _, x := range st.objs {
		jobs <- x
	}
	close(jobs)
	wg.Wait()

	for _, seen := range locals {
		for e := range seen {
			st.pg(e.parent).addEdge(e.from, e.to, EdgeConflict)
		}
	}
	for _, g := range st.sg.parents {
		g.build()
	}
	return st.sg
}

// CheckParallel is Check with the SG construction fanned out over workers
// (see BuildParallel). Verdicts and certificates are identical to Check's.
func CheckParallel(tr *tname.Tree, b event.Behavior, workers int) *Result {
	res := &Result{}
	serial := b.Serial()
	if err := simple.CheckWellFormed(tr, serial); err != nil {
		res.WFErr = err
		return res
	}
	res.SG = BuildParallel(tr, serial, workers)
	res.ValueViolations = simple.AppropriateReturnValues(tr, serial)
	if len(res.ValueViolations) > 0 {
		return res
	}
	order, cycle := res.SG.Acyclicity()
	if cycle != nil {
		res.Cycle = cycle
		return res
	}
	views, err := ComputeViews(tr, res.SG, order)
	if err != nil {
		res.ViewErr = err
		return res
	}
	res.OK = true
	res.Certificate = &Certificate{Order: order, Views: views}
	return res
}
