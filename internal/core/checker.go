package core

import (
	"runtime"
	"sync"

	"nestedsg/internal/event"
	"nestedsg/internal/simple"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// edgeKey identifies one (pair, kind) edge record for deduplication during
// accumulation.
type edgeKey struct {
	parent   tname.TxID
	from, to int32
	kind     EdgeKind
}

// Checker constructs serialization graphs and runs the Theorem 8/19 check
// over one system type, pooling every piece of working memory — node maps,
// visibility memos, per-object operation lists, edge-dedup sets, the
// freeze scratch and the streaming checker — so repeated Build/Check/
// StreamPrefix calls over the same tname.Tree amortize to (near-)zero
// steady-state allocations. Interned transaction and object names are
// small dense ints, which is what makes every former map a slice.
//
// A Checker is not safe for concurrent use, and the *SG / *Result returned
// by its methods alias the pooled buffers: each return value is valid only
// until the next call on the same Checker. Callers that need results to
// outlive the next call should use the package-level free functions, which
// construct a throwaway Checker per call.
type Checker struct {
	tr *tname.Tree

	// epoch stamps the per-tx and per-object scratch entries; bumping it is
	// the O(1) "clear everything" of each build.
	epoch uint32

	// Per transaction: the node index in its parent's graph (every tx is a
	// child of exactly one parent, so one array serves all parent graphs),
	// the recycled parent graph keyed by parent name, the commit stamp and
	// the visible-to-T0 memo (1 visible, 2 not).
	nodeOf  []int32
	nodeEp  []uint32
	pgOf    []*ParentGraph
	pgEp    []uint32
	comEp   []uint32
	visMemo []uint8
	visEp   []uint32

	// Per parent: children reported so far, in β order (precedes source).
	reported [][]tname.TxID
	repEp    []uint32

	// Per object: the visible operations in β order, and the discovery
	// order of objects with operations.
	byObj [][]event.AccessOp
	objEp []uint32
	objs  []tname.ObjID

	// seen dedups (pair, kind) edge records; cleared (not reallocated) per
	// build.
	seen map[edgeKey]struct{}

	sg        SG
	fz        freezeScratch
	win       []event.AccessOp
	serialBuf event.Behavior
	reduced   bool

	inc *Incremental

	// Parallel-scan worker pools.
	workerSeen []map[edgeRec]struct{}
	workerWin  [][]event.AccessOp
}

// NewChecker returns a Checker for the given system type. The pooled
// scratch grows to the tree's size on first use and is retained across
// calls.
func NewChecker(tr *tname.Tree) *Checker {
	return &Checker{tr: tr, seen: make(map[edgeKey]struct{})}
}

// grow sizes the dense per-tx/per-object scratch to the current tree; the
// tree may gain names between calls (it is append-only), never lose them.
func (c *Checker) grow() {
	if n := c.tr.NumTx(); n > len(c.nodeOf) {
		for len(c.nodeOf) < n {
			c.nodeOf = append(c.nodeOf, 0)
			c.nodeEp = append(c.nodeEp, 0)
			c.pgOf = append(c.pgOf, nil)
			c.pgEp = append(c.pgEp, 0)
			c.comEp = append(c.comEp, 0)
			c.visMemo = append(c.visMemo, 0)
			c.visEp = append(c.visEp, 0)
			c.reported = append(c.reported, nil)
			c.repEp = append(c.repEp, 0)
		}
	}
	if n := c.tr.NumObjects(); n > len(c.byObj) {
		for len(c.byObj) < n {
			c.byObj = append(c.byObj, nil)
			c.objEp = append(c.objEp, 0)
		}
	}
}

// begin opens a build: size the scratch, advance the epoch and reset the
// recycled result.
//
//sgvet:hotpath
func (c *Checker) begin() {
	c.grow()
	c.epoch++
	if c.epoch == 0 {
		// Wraparound after 2^32 builds: stale stamps could collide, so pay
		// one full clear.
		clear(c.nodeEp)
		clear(c.pgEp)
		clear(c.comEp)
		clear(c.visEp)
		clear(c.repEp)
		clear(c.objEp)
		c.epoch = 1
	}
	clear(c.seen)
	c.objs = c.objs[:0]
	c.sg.tr = c.tr
	c.sg.parents = c.sg.parents[:0]
	c.sg.VisibleOps = c.sg.VisibleOps[:0]
}

// visible reports whether tx is visible to T0: every ancestor strictly
// below Root has a COMMIT stamp. Memoized along the walked path, mirroring
// simple.Vis for the T0 oracle.
//
//sgvet:hotpath
func (c *Checker) visible(t tname.TxID) bool {
	if t == tname.Root || t == tname.None {
		return true
	}
	res := false
	u := t
	for {
		if u == tname.Root || u == tname.None {
			res = true
			break
		}
		if c.visEp[u] == c.epoch {
			res = c.visMemo[u] == 1
			break
		}
		if c.comEp[u] != c.epoch {
			break
		}
		u = c.tr.Parent(u)
	}
	memo := uint8(2)
	if res {
		memo = 1
	}
	for v := t; v != u && v != tname.Root && v != tname.None; v = c.tr.Parent(v) {
		c.visEp[v] = c.epoch
		c.visMemo[v] = memo
	}
	if u != tname.Root && u != tname.None {
		c.visEp[u] = c.epoch
		c.visMemo[u] = memo
	}
	return res
}

// pg returns the (recycled) parent graph for p in the current build.
func (c *Checker) pg(p tname.TxID) *ParentGraph {
	if c.pgEp[p] == c.epoch {
		return c.pgOf[p]
	}
	g := c.pgOf[p]
	if g == nil {
		g = &ParentGraph{Parent: p}
		c.pgOf[p] = g
	} else {
		g.Children = g.Children[:0]
		g.edges = g.edges[:0]
	}
	c.pgEp[p] = c.epoch
	c.sg.parents = append(c.sg.parents, g)
	return g
}

// node returns t's node index in pg, materializing the child on first use.
//
//sgvet:hotpath
func (c *Checker) node(pg *ParentGraph, t tname.TxID) int32 {
	if c.nodeEp[t] == c.epoch {
		return c.nodeOf[t]
	}
	i := int32(len(pg.Children))
	pg.Children = append(pg.Children, t)
	c.nodeOf[t] = i
	c.nodeEp[t] = c.epoch
	return i
}

// addEdge records from→to in SG(β, parent), once per (pair, kind).
func (c *Checker) addEdge(parent, from, to tname.TxID, kind EdgeKind) {
	pg := c.pg(parent)
	f, t := c.node(pg, from), c.node(pg, to)
	k := edgeKey{parent: parent, from: f, to: t, kind: kind}
	if _, dup := c.seen[k]; dup {
		return
	}
	c.seen[k] = struct{}{}
	pg.edges = append(pg.edges, Edge{From: f, To: t, Kind: kind})
}

// emit implements conflictSink for the sequential scan.
//
//sgvet:hotpath
func (c *Checker) emit(prev, cur event.AccessOp) {
	if p, u, u2, ok := conflictEdge(c.tr, prev, cur); ok {
		c.addEdge(p, u, u2, EdgeConflict)
	}
}

// prepare runs the linear pass over b's serial actions: commit stamps,
// visibility, operations(visible(β, T0)) per object, and the precedes(β)
// edges. Inform events are skipped inline, so callers may pass generic
// behaviors without projecting first.
//
//sgvet:hotpath
func (c *Checker) prepare(b event.Behavior) {
	c.begin()
	for _, e := range b {
		if e.Kind == event.Commit {
			c.comEp[e.Tx] = c.epoch
		}
	}
	for _, e := range b {
		switch e.Kind {
		case event.RequestCommit:
			if !c.tr.IsAccess(e.Tx) || !c.visible(e.Tx) {
				continue
			}
			x := c.tr.AccessObject(e.Tx)
			cur := event.AccessOp{Tx: e.Tx, Obj: x,
				OV: spec.OpVal{Op: c.tr.AccessOp(e.Tx), Val: e.Val}}
			if c.objEp[x] != c.epoch {
				c.objEp[x] = c.epoch
				c.byObj[x] = c.byObj[x][:0]
				c.objs = append(c.objs, x)
			}
			c.byObj[x] = append(c.byObj[x], cur)
			c.sg.VisibleOps = append(c.sg.VisibleOps, cur)

		case event.ReportCommit, event.ReportAbort:
			if e.Tx == tname.Root {
				// Garbage: Root has no parent to report to. Well-formedness
				// rejects this; Build must merely not trip over it, and the
				// streaming checker skips it identically.
				continue
			}
			p := c.tr.Parent(e.Tx)
			if c.repEp[p] != c.epoch {
				c.repEp[p] = c.epoch
				c.reported[p] = c.reported[p][:0]
			}
			c.reported[p] = append(c.reported[p], e.Tx)

		case event.RequestCreate:
			if e.Tx == tname.Root {
				// Garbage: Root is never requested. See ReportCommit above.
				continue
			}
			p := c.tr.Parent(e.Tx)
			if !c.visible(p) {
				continue
			}
			if c.repEp[p] != c.epoch {
				continue
			}
			for _, t := range c.reported[p] {
				if t != e.Tx {
					c.addEdge(p, t, e.Tx, EdgePrecedes)
				}
			}

		default:
			// CREATE, COMMIT and ABORT contribute no edges: conflict(β) is
			// defined on REQUEST_COMMITs and precedes(β) on report/request
			// pairs. Inform kinds never enter the serial projection.
		}
	}
}

// freeze canonicalizes the accumulated graphs: ascending parent order and
// per-graph canonical child numbering.
//
//sgvet:hotpath
func (c *Checker) freeze() *SG {
	c.sg.sortParents()
	for _, g := range c.sg.parents {
		g.build(&c.fz)
	}
	return &c.sg
}

//sgvet:hotpath
func (c *Checker) build(b event.Behavior, reduced bool) *SG {
	c.prepare(b)
	c.reduced = reduced
	for _, x := range c.objs {
		c.win = scanObjectConflicts(c.tr.Spec(x), c.byObj[x], reduced, c.win, c)
	}
	return c.freeze()
}

// Build constructs SG(β) exactly as the package-level Build, reusing the
// checker's pooled scratch. The result is valid until the next call on
// this Checker.
func (c *Checker) Build(b event.Behavior) *SG { return c.build(b, false) }

// BuildReduced is Build with the register transitive-reduction fast path
// (see the package-level BuildReduced).
func (c *Checker) BuildReduced(b event.Behavior) *SG { return c.build(b, true) }

// serialInto refills the pooled projection buffer with b's serial actions.
//
//sgvet:hotpath
func (c *Checker) serialInto(b event.Behavior) event.Behavior {
	c.serialBuf = c.serialBuf[:0]
	for _, e := range b {
		if e.Kind.IsSerial() {
			c.serialBuf = append(c.serialBuf, e)
		}
	}
	return c.serialBuf
}

// Check verifies the hypotheses of Theorem 8/19 exactly as the
// package-level Check, reusing the checker's pooled scratch. The result is
// valid until the next call on this Checker.
func (c *Checker) Check(b event.Behavior) *Result {
	return c.check(b, func(serial event.Behavior) *SG { return c.Build(serial) })
}

// CheckParallel is Check with the conflict scans fanned out over workers
// (see BuildParallel). Verdicts and certificates are identical to Check's.
func (c *Checker) CheckParallel(b event.Behavior, workers int) *Result {
	return c.check(b, func(serial event.Behavior) *SG { return c.BuildParallel(serial, workers) })
}

func (c *Checker) check(b event.Behavior, build func(event.Behavior) *SG) *Result {
	res := &Result{}
	serial := c.serialInto(b)
	if err := simple.CheckWellFormed(c.tr, serial); err != nil {
		res.WFErr = err
		return res
	}
	res.SG = build(serial)
	res.ValueViolations = simple.AppropriateReturnValues(c.tr, serial)
	if len(res.ValueViolations) > 0 {
		return res
	}
	order, cycle := res.SG.Acyclicity()
	if cycle != nil {
		res.Cycle = cycle
		return res
	}
	views, err := ComputeViews(c.tr, res.SG, order)
	if err != nil {
		res.ViewErr = err
		return res
	}
	res.OK = true
	res.Certificate = &Certificate{Order: order, Views: views}
	return res
}

// StreamPrefix replays b through the checker's pooled Incremental and
// returns the raw index of the first event whose prefix has a cyclic SG,
// with the cycle certificate, or (-1, nil) when every prefix passes. See
// the package-level StreamPrefix.
func (c *Checker) StreamPrefix(b event.Behavior) (int, *Cycle) {
	if c.inc == nil {
		c.inc = NewIncremental(c.tr)
	} else {
		c.inc.Reset()
	}
	for _, e := range b {
		if cyc := c.inc.Append(e); cyc != nil {
			_, at := c.inc.Rejected()
			return at, cyc
		}
	}
	return -1, nil
}

// edgeRec is one conflict edge discovered by a parallel scan worker,
// already mapped to the children of the accesses' least common ancestor.
type edgeRec struct {
	parent   tname.TxID
	from, to tname.TxID
}

// workerSink collects one worker's deduplicated conflict edges.
type workerSink struct {
	tr   *tname.Tree
	seen map[edgeRec]struct{}
}

func (w *workerSink) emit(prev, cur event.AccessOp) {
	if p, u, u2, ok := conflictEdge(w.tr, prev, cur); ok {
		w.seen[edgeRec{parent: p, from: u, to: u2}] = struct{}{}
	}
}

// BuildParallel constructs the same SG(β) as Build, fanning the per-object
// conflict scans out over a bounded worker pool. The linear pass
// (visibility, visible-operation collection, precedes(β)) stays sequential
// — it is cheap and order-sensitive — while the quadratic per-object scans,
// which dominate on contended workloads and are independent across objects,
// run concurrently. workers ≤ 0 means GOMAXPROCS.
//
// The result is structurally identical to Build's: canonical child
// numbering makes node indices, certificates and DOT output a function of
// the edge set alone, and the edge set does not depend on scan order.
func (c *Checker) BuildParallel(b event.Behavior, workers int) *SG {
	return c.buildParallel(b, false, workers)
}

// BuildReducedParallel is BuildParallel with BuildReduced's register
// transitive-reduction fast path.
func (c *Checker) BuildReducedParallel(b event.Behavior, workers int) *SG {
	return c.buildParallel(b, true, workers)
}

func (c *Checker) buildParallel(b event.Behavior, reduced bool, workers int) *SG {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c.prepare(b)
	c.reduced = reduced
	if workers > len(c.objs) {
		workers = len(c.objs)
	}
	if workers <= 1 {
		// Nothing to fan out; run the sequential scan.
		for _, x := range c.objs {
			c.win = scanObjectConflicts(c.tr.Spec(x), c.byObj[x], reduced, c.win, c)
		}
		return c.freeze()
	}

	// Each worker dedupes into a private edge set — on contended workloads
	// the scan emits the same (parent, from, to) triple once per conflicting
	// pair, so sharing a sink would serialize the workers on its lock and
	// leave the merge replaying hundreds of thousands of duplicates. The
	// merge below only ever sees each worker's unique edges. tname.Tree is
	// read-only during checks, so the LCA queries inside the workers are
	// safe. Worker sets and window buffers are pooled on the Checker.
	for len(c.workerSeen) < workers {
		c.workerSeen = append(c.workerSeen, make(map[edgeRec]struct{}))
		c.workerWin = append(c.workerWin, nil)
	}
	jobs := make(chan tname.ObjID)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sink := workerSink{tr: c.tr, seen: c.workerSeen[w]}
			win := c.workerWin[w]
			for x := range jobs {
				win = scanObjectConflicts(c.tr.Spec(x), c.byObj[x], reduced, win, &sink)
			}
			c.workerWin[w] = win
		}(w)
	}
	for _, x := range c.objs {
		jobs <- x
	}
	close(jobs)
	wg.Wait()

	for _, seen := range c.workerSeen[:workers] {
		for e := range seen {
			c.addEdge(e.parent, e.from, e.to, EdgeConflict)
		}
		clear(seen)
	}
	return c.freeze()
}
