package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestSGDOTGolden pins the DOT rendering of a multi-parent SG(β): conflicts
// under a subtransaction (SG(β, p)) and under the root (SG(β, T0)), with a
// precedes edge merged onto the root-level conflict. Every materialized
// parent must appear, in ascending parent order, with canonical node
// numbering.
func TestSGDOTGolden(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	p := tr.Child(tname.Root, "p")
	c1 := tr.Child(p, "c1")
	c2 := tr.Child(p, "c2")
	a1 := tr.Access(c1, "a1", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(1)})
	a2 := tr.Access(c2, "a2", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(2)})
	t2 := tr.Child(tname.Root, "t2")
	a3 := tr.Access(t2, "a3", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(3)})

	access := func(a tname.TxID) event.Behavior {
		return event.Behavior{
			ev(event.RequestCreate, a), ev(event.Create, a),
			evv(event.RequestCommit, a, spec.OK), ev(event.Commit, a),
			evv(event.ReportCommit, a, spec.OK),
		}
	}
	closeTx := func(tx tname.TxID) event.Behavior {
		return event.Behavior{
			evv(event.RequestCommit, tx, spec.Nil), ev(event.Commit, tx),
			evv(event.ReportCommit, tx, spec.Nil),
		}
	}
	var b event.Behavior
	b = append(b, ev(event.Create, tname.Root))
	b = append(b, ev(event.RequestCreate, p), ev(event.Create, p))
	b = append(b, ev(event.RequestCreate, c1), ev(event.Create, c1))
	b = append(b, access(a1)...)
	b = append(b, closeTx(c1)...)
	b = append(b, ev(event.RequestCreate, c2), ev(event.Create, c2))
	b = append(b, access(a2)...)
	b = append(b, closeTx(c2)...)
	b = append(b, closeTx(p)...)
	// t2 is requested after p's report: precedes(β) adds p → t2 at the
	// root, merging with the conflict edge from the x accesses.
	b = append(b, ev(event.RequestCreate, t2), ev(event.Create, t2))
	b = append(b, access(a3)...)
	b = append(b, closeTx(t2)...)

	sg := Build(tr, b)
	if n := len(sg.Parents()); n != 2 {
		t.Fatalf("materialized parents = %d, want 2 (T0 and p)", n)
	}
	if k, ok := sg.Parent(tname.Root).HasEdge(p, t2); !ok || k != EdgeConflict|EdgePrecedes {
		t.Fatalf("root edge p->t2 = %v, %v", k, ok)
	}
	got := sg.DOT()

	golden := filepath.Join("testdata", "golden_multiparent.dot")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("DOT drifted from golden:\n got:\n%s\nwant:\n%s", got, want)
	}
}
