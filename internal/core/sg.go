// Package core implements the paper's contribution: the serialization graph
// construction for nested transactions (§4) and its generalization to
// arbitrary data types (§6.1), together with a checker for the main theorem
// (Theorem 8 / Theorem 19): a finite simple behavior with appropriate
// return values and an acyclic serialization graph is serially correct for
// T0.
//
// The construction takes a recorded behavior β (a sequence of serial
// actions) and produces SG(β), the union of one directed graph SG(β, T) per
// transaction T visible to T0 in β. The nodes of SG(β, T) are children of
// T; there is an edge T' → T” when (T', T”) ∈ precedes(β) ∪ conflict(β):
//
//   - conflict(β): a descendant access of T” requested commit after a
//     conflicting descendant access of T' did, both visible to T0 (§4);
//     for read/write objects two accesses conflict unless both are reads,
//     and in general they conflict when they fail to commute backward
//     (§6.1) — this package takes the relation from each object's Spec, so
//     the same code implements both constructions.
//   - precedes(β): the parent saw a report for T' before requesting the
//     creation of T” (external consistency, §4).
//
// Acyclicity is certified: the checker returns the sibling order R obtained
// by topologically sorting each SG(β, T) and the per-object views
// view(β, T0, R, X), which internal/serial replays into an explicit serial
// witness γ with γ|T0 = β|T0.
package core

import (
	"fmt"
	"sort"
	"strings"

	"nestedsg/internal/event"
	"nestedsg/internal/graph"
	"nestedsg/internal/simple"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// EdgeKind labels why an edge is present in a serialization graph.
type EdgeKind uint8

// Edge kinds; an edge may carry both labels.
const (
	EdgeConflict EdgeKind = 1 << iota
	EdgePrecedes
)

// String renders the label set.
func (k EdgeKind) String() string {
	var parts []string
	if k&EdgeConflict != 0 {
		parts = append(parts, "conflict")
	}
	if k&EdgePrecedes != 0 {
		parts = append(parts, "precedes")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// ParentGraph is SG(β, T) for one transaction T visible to T0: the directed
// graph on the children of T induced by conflict(β) ∪ precedes(β).
type ParentGraph struct {
	// Parent is T.
	Parent tname.TxID
	// Children maps node index to child transaction name. Only children
	// that occur in the behavior are materialized; the paper's graph has a
	// node per (possibly never-invoked) child, but isolated nodes affect
	// neither acyclicity nor the derived order.
	Children []tname.TxID
	// G is the edge structure over node indices.
	G *graph.Graph
	// Kinds labels each edge.
	Kinds map[[2]int32]EdgeKind

	index map[tname.TxID]int
}

func newParentGraph(parent tname.TxID) *ParentGraph {
	return &ParentGraph{Parent: parent, Kinds: make(map[[2]int32]EdgeKind), index: make(map[tname.TxID]int)}
}

func (pg *ParentGraph) node(t tname.TxID) int {
	if i, ok := pg.index[t]; ok {
		return i
	}
	i := len(pg.Children)
	pg.Children = append(pg.Children, t)
	pg.index[t] = i
	return i
}

func (pg *ParentGraph) addEdge(from, to tname.TxID, kind EdgeKind) {
	f, t := pg.node(from), pg.node(to)
	key := [2]int32{int32(f), int32(t)}
	pg.Kinds[key] |= kind
}

// build freezes the accumulated edge map into the graph structure, first
// renumbering children in ascending name order. Node indices — and hence
// topological sorts, cycle certificates and DOT output — then depend only
// on the edge *set*, not on the order edges were discovered, which is what
// lets the sequential, parallel and streaming constructions certify
// identically.
func (pg *ParentGraph) build() {
	old := pg.Children
	sorted := append([]tname.TxID(nil), old...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	index := make(map[tname.TxID]int, len(sorted))
	for i, t := range sorted {
		index[t] = i
	}
	perm := make([]int32, len(old))
	for i, t := range old {
		perm[i] = int32(index[t])
	}
	kinds := make(map[[2]int32]EdgeKind, len(pg.Kinds))
	for key, k := range pg.Kinds {
		kinds[[2]int32{perm[key[0]], perm[key[1]]}] = k
	}
	pg.Children, pg.index, pg.Kinds = sorted, index, kinds
	// Insert edges in sorted order: adjacency-list order feeds the cycle
	// certificate's DFS, so it must not inherit map iteration order.
	keys := make([][2]int32, 0, len(kinds))
	for key := range kinds {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	pg.G = graph.New(len(sorted))
	for _, key := range keys {
		pg.G.AddEdge(int(key[0]), int(key[1]))
	}
}

// clone copies the accumulating fields (not G); callers freeze the copy with
// build(). The streaming checker uses this to snapshot SG(β-prefix) without
// disturbing its live state.
func (pg *ParentGraph) clone() *ParentGraph {
	c := newParentGraph(pg.Parent)
	c.Children = append([]tname.TxID(nil), pg.Children...)
	for t, i := range pg.index {
		c.index[t] = i
	}
	for k, v := range pg.Kinds {
		c.Kinds[k] = v
	}
	return c
}

// HasEdge reports whether the edge from→to is present, with its labels.
func (pg *ParentGraph) HasEdge(from, to tname.TxID) (EdgeKind, bool) {
	f, okF := pg.index[from]
	t, okT := pg.index[to]
	if !okF || !okT {
		return 0, false
	}
	k, ok := pg.Kinds[[2]int32{int32(f), int32(t)}]
	return k, ok
}

// SG is the serialization graph SG(β): the union of the disjoint graphs
// SG(β, T) over transactions T visible to T0 in β.
type SG struct {
	tr      *tname.Tree
	parents map[tname.TxID]*ParentGraph
	// VisibleOps is operations(visible(β, T0)) in β order; reused by the
	// view computation.
	VisibleOps []event.AccessOp
}

// Parents returns the per-parent graphs, keyed by parent name.
func (sg *SG) Parents() map[tname.TxID]*ParentGraph { return sg.parents }

// Parent returns SG(β, T), or nil if T contributed no edges.
func (sg *SG) Parent(t tname.TxID) *ParentGraph { return sg.parents[t] }

// NumEdges returns the total number of distinct edges in SG(β).
func (sg *SG) NumEdges() int {
	n := 0
	for _, pg := range sg.parents {
		n += len(pg.Kinds)
	}
	return n
}

// Build constructs SG(β) from the serial actions of b, with the paper's
// full conflict relation: every pair of conflicting visible operations
// contributes an edge. Inform events are ignored, so callers may pass
// generic behaviors directly.
//
// Cost: the precedes scan is linear plus one edge per (reported sibling,
// later request) pair; the conflict scan compares each visible access
// against the earlier visible accesses on the same object, so it is
// quadratic in the per-object access count in the worst case (benchmarked
// as experiment E5).
func Build(tr *tname.Tree, b event.Behavior) *SG {
	return build(tr, b, false)
}

// BuildReduced constructs a transitively-reduced variant for read/write
// objects: a read takes an edge from the latest preceding write only, and
// a write from the operations since (and including) the latest write. The
// omitted edges are implied within each SG(β, T) whenever the full graph
// is acyclic, so acyclicity verdicts and derived orders stay valid —
// TestFastPathEquivalence pins verdict equivalence, and experiment E5
// reports the cost difference as an ablation. Non-register objects always
// use the full pairwise scan (their conflicts depend on values).
func BuildReduced(tr *tname.Tree, b event.Behavior) *SG {
	return build(tr, b, true)
}

// buildState is the outcome of the sequential first pass over β: the SG
// with its precedes(β) edges already present, plus the per-object lists of
// visible access operations (in β order) still awaiting the conflict scan.
// The conflict scan over distinct objects is embarrassingly parallel, which
// is what BuildParallel exploits; the sequential builder runs the very same
// scan inline.
type buildState struct {
	sg *SG
	// objs is the object discovery order; byObj holds each object's visible
	// operations in β order.
	objs  []tname.ObjID
	byObj map[tname.ObjID][]event.AccessOp
}

func (st *buildState) pg(parent tname.TxID) *ParentGraph {
	g, ok := st.sg.parents[parent]
	if !ok {
		g = newParentGraph(parent)
		st.sg.parents[parent] = g
	}
	return g
}

// prepare runs the linear pass: visibility, operations(visible(β, T0)) per
// object, and the precedes(β) edges.
func prepare(tr *tname.Tree, b event.Behavior) *buildState {
	serial := b.Serial()
	vis := simple.NewVis(tr, serial, tname.Root)
	st := &buildState{
		sg:    &SG{tr: tr, parents: make(map[tname.TxID]*ParentGraph)},
		byObj: make(map[tname.ObjID][]event.AccessOp),
	}
	// precedes(β): per parent, the children reported so far in β order.
	reported := make(map[tname.TxID][]tname.TxID)

	for _, e := range serial {
		switch e.Kind {
		case event.RequestCommit:
			if !tr.IsAccess(e.Tx) || !vis.Visible(e.Tx) {
				continue
			}
			x := tr.AccessObject(e.Tx)
			cur := event.AccessOp{Tx: e.Tx, Obj: x,
				OV: spec.OpVal{Op: tr.AccessOp(e.Tx), Val: e.Val}}
			if _, ok := st.byObj[x]; !ok {
				st.objs = append(st.objs, x)
			}
			st.byObj[x] = append(st.byObj[x], cur)
			st.sg.VisibleOps = append(st.sg.VisibleOps, cur)

		case event.ReportCommit, event.ReportAbort:
			p := tr.Parent(e.Tx)
			reported[p] = append(reported[p], e.Tx)

		case event.RequestCreate:
			p := tr.Parent(e.Tx)
			if !vis.Visible(p) {
				continue
			}
			for _, t := range reported[p] {
				if t != e.Tx {
					st.pg(p).addEdge(t, e.Tx, EdgePrecedes)
				}
			}

		default:
			// CREATE, COMMIT and ABORT contribute no edges: conflict(β) is
			// defined on REQUEST_COMMITs and precedes(β) on report/request
			// pairs. Inform kinds cannot appear in a serial projection.
		}
	}
	return st
}

// scanObjectConflicts relates each operation of one object to the earlier
// conflicting ones, emitting the chronologically ordered pair — all pairs in
// faithful mode, or the transitive-reduction window for registers in reduced
// mode. ops must be in β order. It reads only the spec, so distinct objects
// can be scanned concurrently as long as emit is safe.
func scanObjectConflicts(sp spec.Spec, ops []event.AccessOp, reduced bool, emit func(prev, cur event.AccessOp)) {
	if reduced && sp.Name() == "register" {
		// Fast path: a read conflicts with the last write only; a write
		// conflicts with everything since (and including) the last write.
		// The window holds the last write (at index 0, if any) and the
		// reads after it.
		var win []event.AccessOp
		for _, cur := range ops {
			if spec.IsRead(cur.OV.Op) {
				if len(win) > 0 && spec.IsWrite(win[0].OV.Op) {
					emit(win[0], cur)
				}
				win = append(win, cur)
			} else {
				for _, prev := range win {
					emit(prev, cur)
				}
				win = append(win[:0:0], cur)
			}
		}
		return
	}
	for i, cur := range ops {
		for _, prev := range ops[:i] {
			if sp.Conflicts(prev.OV, cur.OV) {
				emit(prev, cur)
			}
		}
	}
}

// conflictEdge maps a conflicting operation pair to its SG edge: at the
// children of the least common ancestor of the two accesses. The edge is
// degenerate (ok=false) when both accesses descend from the same child.
func conflictEdge(tr *tname.Tree, prev, cur event.AccessOp) (parent, from, to tname.TxID, ok bool) {
	if prev.Tx == cur.Tx {
		return 0, 0, 0, false
	}
	lca := tr.LCA(prev.Tx, cur.Tx)
	u := tr.ChildAncestor(lca, prev.Tx)
	u2 := tr.ChildAncestor(lca, cur.Tx)
	if u == u2 {
		return 0, 0, 0, false
	}
	return lca, u, u2, true
}

func build(tr *tname.Tree, b event.Behavior, reduced bool) *SG {
	st := prepare(tr, b)
	for _, x := range st.objs {
		scanObjectConflicts(tr.Spec(x), st.byObj[x], reduced, func(prev, cur event.AccessOp) {
			if p, u, u2, ok := conflictEdge(tr, prev, cur); ok {
				st.pg(p).addEdge(u, u2, EdgeConflict)
			}
		})
	}
	for _, g := range st.sg.parents {
		g.build()
	}
	return st.sg
}

// Cycle describes a directed cycle found in one SG(β, T).
type Cycle struct {
	// Parent is the transaction whose sibling graph contains the cycle.
	Parent tname.TxID
	// Nodes are the children of Parent forming the cycle, in edge order;
	// the edge Nodes[len-1] → Nodes[0] closes it.
	Nodes []tname.TxID
	// Kinds labels the consecutive edges of the cycle.
	Kinds []EdgeKind
}

// Format renders the cycle with full names.
func (c *Cycle) Format(tr *tname.Tree) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle in SG(β, %s): ", tr.Name(c.Parent))
	for i, n := range c.Nodes {
		if i > 0 {
			fmt.Fprintf(&sb, " -[%s]-> ", c.Kinds[i-1])
		}
		sb.WriteString(tr.Label(n))
	}
	fmt.Fprintf(&sb, " -[%s]-> %s", c.Kinds[len(c.Kinds)-1], tr.Label(c.Nodes[0]))
	return sb.String()
}

// SiblingOrder is the certificate produced by an acyclic SG(β): for each
// transaction visible to T0 that has ordered children, a total order (a
// topological sort of SG(β, T)) on the children that occur in β. It
// realizes the paper's suitable sibling order R.
type SiblingOrder struct {
	tr *tname.Tree
	// ByParent maps each parent to its ordered children.
	ByParent map[tname.TxID][]tname.TxID
	// rank[t] is t's position among its ordered siblings.
	rank map[tname.TxID]int
}

// Rank returns the position of t in its sibling order and whether t is
// ordered at all.
func (r *SiblingOrder) Rank(t tname.TxID) (int, bool) {
	n, ok := r.rank[t]
	return n, ok
}

// CompareSiblings is a deterministic total order on siblings that extends
// R: siblings ranked by the topological sorts come first in rank order, and
// unranked siblings (which have no conflict or precedes constraints, hence
// may be placed anywhere) follow in name order. Using one shared total
// order for both the view computation and the serial-witness replay keeps
// the two consistent.
func (r *SiblingOrder) CompareSiblings(a, b tname.TxID) bool {
	if a == b {
		return false
	}
	ra, okA := r.rank[a]
	rb, okB := r.rank[b]
	switch {
	case okA && okB:
		return ra < rb
	case okA:
		return true
	case okB:
		return false
	default:
		return a < b
	}
}

// Less reports whether (a, b) ∈ the total extension of R_trans: a and b are
// ordered by CompareSiblings on the children of lca(a, b) they descend
// from. It panics when a and b are related by ancestry (R_trans never
// orders such pairs).
func (r *SiblingOrder) Less(a, b tname.TxID) bool {
	if r.tr.IsOrdered(a, b) {
		panic("core: SiblingOrder.Less on ancestrally related names")
	}
	lca := r.tr.LCA(a, b)
	u := r.tr.ChildAncestor(lca, a)
	u2 := r.tr.ChildAncestor(lca, b)
	return r.CompareSiblings(u, u2)
}

// SortSiblings returns the given sibling transactions in the certificate's
// total order (constrained children first in topological order, then
// unconstrained ones). The input is not modified.
func (r *SiblingOrder) SortSiblings(ts []tname.TxID) []tname.TxID {
	out := make([]tname.TxID, len(ts))
	copy(out, ts)
	sort.Slice(out, func(i, j int) bool { return r.CompareSiblings(out[i], out[j]) })
	return out
}

// SortOps sorts access operations by R_trans on their transaction
// components. The order is total on the operations of one behavior because
// R orders all sibling pairs that occur in it (Theorem 8's construction
// totally orders the children of every visible parent).
func (r *SiblingOrder) SortOps(ops []event.AccessOp) []event.AccessOp {
	out := make([]event.AccessOp, len(ops))
	copy(out, ops)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tx == out[j].Tx {
			return false
		}
		return r.Less(out[i].Tx, out[j].Tx)
	})
	return out
}

// ForgeOrderForTest builds a SiblingOrder from explicit per-parent child
// orders, bypassing the graph construction. It exists so tests can hand the
// witness machinery a *wrong* order and watch it refuse; production code
// must obtain orders from Acyclicity.
func ForgeOrderForTest(tr *tname.Tree, byParent map[tname.TxID][]tname.TxID) *SiblingOrder {
	order := &SiblingOrder{tr: tr, ByParent: byParent, rank: make(map[tname.TxID]int)}
	for _, kids := range byParent {
		for i, k := range kids {
			order.rank[k] = i
		}
	}
	return order
}

// Acyclicity checks SG(β) and, when it is acyclic, derives the sibling
// order certificate. On failure it returns the concrete cycle.
func (sg *SG) Acyclicity() (*SiblingOrder, *Cycle) {
	order := &SiblingOrder{tr: sg.tr, ByParent: make(map[tname.TxID][]tname.TxID), rank: make(map[tname.TxID]int)}
	// Deterministic parent processing order for reproducible certificates.
	parents := make([]tname.TxID, 0, len(sg.parents))
	for p := range sg.parents {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })

	for _, p := range parents {
		pgr := sg.parents[p]
		topo, cyc := pgr.G.TopoSort()
		if cyc != nil {
			c := &Cycle{Parent: p}
			for _, n := range cyc {
				c.Nodes = append(c.Nodes, pgr.Children[n])
			}
			for i := range cyc {
				j := (i + 1) % len(cyc)
				c.Kinds = append(c.Kinds, pgr.Kinds[[2]int32{int32(cyc[i]), int32(cyc[j])}])
			}
			return nil, c
		}
		kids := make([]tname.TxID, len(topo))
		for i, n := range topo {
			kids[i] = pgr.Children[n]
			order.rank[pgr.Children[n]] = i
		}
		order.ByParent[p] = kids
	}
	return order, nil
}

// DOT renders one digraph per materialized parent graph — every SG(β, T)
// that acquired at least one edge, in ascending parent order — concatenated.
// Parents whose children have no conflict or precedes constraints are never
// materialized and so do not appear.
func (sg *SG) DOT() string {
	parents := make([]tname.TxID, 0, len(sg.parents))
	for p := range sg.parents {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	var sb strings.Builder
	for _, p := range parents {
		pgr := sg.parents[p]
		name := fmt.Sprintf("SG_%s", sg.tr.Name(p))
		sb.WriteString(pgr.G.DOT(name, func(v int) string { return sg.tr.Label(pgr.Children[v]) }))
	}
	return sb.String()
}
