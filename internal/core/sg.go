// Package core implements the paper's contribution: the serialization graph
// construction for nested transactions (§4) and its generalization to
// arbitrary data types (§6.1), together with a checker for the main theorem
// (Theorem 8 / Theorem 19): a finite simple behavior with appropriate
// return values and an acyclic serialization graph is serially correct for
// T0.
//
// The construction takes a recorded behavior β (a sequence of serial
// actions) and produces SG(β), the union of one directed graph SG(β, T) per
// transaction T visible to T0 in β. The nodes of SG(β, T) are children of
// T; there is an edge T' → T” when (T', T”) ∈ precedes(β) ∪ conflict(β):
//
//   - conflict(β): a descendant access of T” requested commit after a
//     conflicting descendant access of T' did, both visible to T0 (§4);
//     for read/write objects two accesses conflict unless both are reads,
//     and in general they conflict when they fail to commute backward
//     (§6.1) — this package takes the relation from each object's Spec, so
//     the same code implements both constructions.
//   - precedes(β): the parent saw a report for T' before requesting the
//     creation of T” (external consistency, §4).
//
// Acyclicity is certified: the checker returns the sibling order R obtained
// by topologically sorting each SG(β, T) and the per-object views
// view(β, T0, R, X), which internal/serial replays into an explicit serial
// witness γ with γ|T0 = β|T0.
//
// The hot path is the Checker type: it carries pooled scratch so repeated
// constructions over one system type amortize to near-zero steady-state
// allocations. The free functions Build/Check/... are one-shot wrappers.
package core

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"nestedsg/internal/event"
	"nestedsg/internal/graph"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// EdgeKind labels why an edge is present in a serialization graph.
type EdgeKind uint8

// Edge kinds; an edge may carry both labels.
const (
	EdgeConflict EdgeKind = 1 << iota
	EdgePrecedes
)

// String renders the label set.
func (k EdgeKind) String() string {
	var parts []string
	if k&EdgeConflict != 0 {
		parts = append(parts, "conflict")
	}
	if k&EdgePrecedes != 0 {
		parts = append(parts, "precedes")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Edge is one labeled edge of a ParentGraph over canonical child indices:
// Children[From] → Children[To].
type Edge struct {
	From, To int32
	Kind     EdgeKind
}

// ParentGraph is SG(β, T) for one transaction T visible to T0: the directed
// graph on the children of T induced by conflict(β) ∪ precedes(β).
//
// The representation is dense: children are renumbered canonically
// (ascending by name) when the graph is frozen, and the labeled edge set is
// a slice sorted by (From, To) — no maps, so a recycled ParentGraph refills
// without allocating.
type ParentGraph struct {
	// Parent is T.
	Parent tname.TxID
	// Children maps node index to child transaction name. Only children
	// that occur in the behavior are materialized; the paper's graph has a
	// node per (possibly never-invoked) child, but isolated nodes affect
	// neither acyclicity nor the derived order. After build the slice is
	// sorted ascending — the canonical numbering.
	Children []tname.TxID
	// G is the edge structure over node indices.
	G *graph.Graph

	// edges holds one record per (pair, kind) during accumulation — node
	// indices are in discovery order and the builder dedups — and the
	// canonical merged edge set, sorted by (From, To), after build.
	edges []Edge
}

// Edges returns the labeled edge set over canonical child indices, sorted
// by (From, To). The slice is owned by the graph; callers must not modify
// it. Only valid on a built graph (any SG handed out by the package).
func (pg *ParentGraph) Edges() []Edge { return pg.edges }

// nodeIndex returns t's canonical node index, or -1. Built graphs only.
func (pg *ParentGraph) nodeIndex(t tname.TxID) int {
	if i, ok := slices.BinarySearch(pg.Children, t); ok {
		return i
	}
	return -1
}

// kindAt returns the labels of the edge f→t on a built graph (0 if absent).
func (pg *ParentGraph) kindAt(f, t int32) EdgeKind {
	i, ok := slices.BinarySearchFunc(pg.edges, Edge{From: f, To: t}, func(a, b Edge) int {
		if a.From != b.From {
			return int(a.From) - int(b.From)
		}
		return int(a.To) - int(b.To)
	})
	if !ok {
		return 0
	}
	return pg.edges[i].Kind
}

// HasEdge reports whether the edge from→to is present, with its labels.
// Only valid on a built graph.
func (pg *ParentGraph) HasEdge(from, to tname.TxID) (EdgeKind, bool) {
	f := pg.nodeIndex(from)
	t := pg.nodeIndex(to)
	if f < 0 || t < 0 {
		return 0, false
	}
	k := pg.kindAt(int32(f), int32(t))
	return k, k != 0
}

// freezeScratch is the reusable working memory of ParentGraph.build.
type freezeScratch struct {
	perm   []int32
	sorted []tname.TxID
}

// build freezes the accumulated edge records into the canonical form, first
// renumbering children in ascending name order. Node indices — and hence
// topological sorts, cycle certificates and DOT output — then depend only
// on the edge *set*, not on the order edges were discovered, which is what
// lets the sequential, parallel and streaming constructions certify
// identically.
func (pg *ParentGraph) build(fz *freezeScratch) {
	n := len(pg.Children)
	sorted := append(fz.sorted[:0], pg.Children...)
	slices.Sort(sorted)
	perm := fz.perm[:0]
	for _, t := range pg.Children {
		i, _ := slices.BinarySearch(sorted, t)
		perm = append(perm, int32(i))
	}
	copy(pg.Children, sorted)
	fz.perm, fz.sorted = perm, sorted

	for i := range pg.edges {
		e := &pg.edges[i]
		e.From, e.To = perm[e.From], perm[e.To]
	}
	slices.SortFunc(pg.edges, func(a, b Edge) int {
		if a.From != b.From {
			return int(a.From) - int(b.From)
		}
		return int(a.To) - int(b.To)
	})
	// Merge the per-kind records of one pair into a single labeled edge.
	out := pg.edges[:0]
	for _, e := range pg.edges {
		if k := len(out); k > 0 && out[k-1].From == e.From && out[k-1].To == e.To {
			out[k-1].Kind |= e.Kind
		} else {
			out = append(out, e)
		}
	}
	pg.edges = out

	// Insert edges in sorted order: adjacency-list order feeds the cycle
	// certificate's DFS, so it must not inherit discovery order. The edge
	// set is already deduplicated, so the unchecked insert applies.
	if pg.G == nil {
		pg.G = graph.New(n)
	} else {
		pg.G.Reset(n)
	}
	for _, e := range pg.edges {
		pg.G.AddEdgeUnchecked(int(e.From), int(e.To))
	}
}

// clone copies the accumulating fields (not G); callers freeze the copy with
// build(). The streaming checker uses this to snapshot SG(β-prefix) without
// disturbing its live state.
func (pg *ParentGraph) clone() *ParentGraph {
	return &ParentGraph{
		Parent:   pg.Parent,
		Children: slices.Clone(pg.Children),
		edges:    slices.Clone(pg.edges),
	}
}

// SG is the serialization graph SG(β): the union of the disjoint graphs
// SG(β, T) over transactions T visible to T0 in β.
type SG struct {
	tr *tname.Tree
	// parents holds the materialized per-parent graphs in ascending parent
	// order.
	parents []*ParentGraph
	// VisibleOps is operations(visible(β, T0)) in β order; reused by the
	// view computation.
	VisibleOps []event.AccessOp
}

// Parents returns the per-parent graphs, keyed by parent name. The map is
// a fresh copy on every call — mutating it cannot corrupt the checker's
// state. Iteration-heavy callers should prefer ForEachParent, which walks
// the graphs in ascending parent order without allocating.
func (sg *SG) Parents() map[tname.TxID]*ParentGraph {
	out := make(map[tname.TxID]*ParentGraph, len(sg.parents))
	for _, pg := range sg.parents {
		out[pg.Parent] = pg
	}
	return out
}

// ForEachParent calls f for every materialized SG(β, T) in ascending parent
// order.
func (sg *SG) ForEachParent(f func(parent tname.TxID, pg *ParentGraph)) {
	for _, pg := range sg.parents {
		f(pg.Parent, pg)
	}
}

// NumParents returns the number of materialized parent graphs.
func (sg *SG) NumParents() int { return len(sg.parents) }

// Parent returns SG(β, T), or nil if T contributed no edges.
func (sg *SG) Parent(t tname.TxID) *ParentGraph {
	i, ok := slices.BinarySearchFunc(sg.parents, t, func(pg *ParentGraph, t tname.TxID) int {
		return int(pg.Parent) - int(t)
	})
	if !ok {
		return nil
	}
	return sg.parents[i]
}

// NumEdges returns the total number of distinct edges in SG(β).
func (sg *SG) NumEdges() int {
	n := 0
	for _, pg := range sg.parents {
		n += len(pg.edges)
	}
	return n
}

// sortParents establishes the ascending-parent invariant after accumulation.
func (sg *SG) sortParents() {
	slices.SortFunc(sg.parents, func(a, b *ParentGraph) int { return int(a.Parent) - int(b.Parent) })
}

// Build constructs SG(β) from the serial actions of b, with the paper's
// full conflict relation: every pair of conflicting visible operations
// contributes an edge. Inform events are ignored, so callers may pass
// generic behaviors directly.
//
// Cost: the precedes scan is linear plus one edge per (reported sibling,
// later request) pair; the conflict scan compares each visible access
// against the earlier visible accesses on the same object, so it is
// quadratic in the per-object access count in the worst case (benchmarked
// as experiment E5). Repeated constructions over one tree should share a
// Checker, which pools all working memory.
func Build(tr *tname.Tree, b event.Behavior) *SG {
	return NewChecker(tr).Build(b)
}

// BuildReduced constructs a transitively-reduced variant for read/write
// objects: a read takes an edge from the latest preceding write only, and
// a write from the operations since (and including) the latest write. The
// omitted edges are implied within each SG(β, T) whenever the full graph
// is acyclic, so acyclicity verdicts and derived orders stay valid —
// TestFastPathEquivalence pins verdict equivalence, and experiment E5
// reports the cost difference as an ablation. Non-register objects always
// use the full pairwise scan (their conflicts depend on values).
func BuildReduced(tr *tname.Tree, b event.Behavior) *SG {
	return NewChecker(tr).BuildReduced(b)
}

// conflictSink receives the chronologically ordered conflicting pairs found
// by scanObjectConflicts. Implementations are pointer-shaped so the
// interface call does not allocate.
type conflictSink interface {
	emit(prev, cur event.AccessOp)
}

// scanObjectConflicts relates each operation of one object to the earlier
// conflicting ones, emitting the chronologically ordered pair — all pairs in
// faithful mode, or the transitive-reduction window for registers in reduced
// mode. ops must be in β order. It reads only the spec, so distinct objects
// can be scanned concurrently as long as sink is private to the caller. win
// is reusable window scratch; the (possibly grown) buffer is returned.
func scanObjectConflicts(sp spec.Spec, ops []event.AccessOp, reduced bool, win []event.AccessOp, sink conflictSink) []event.AccessOp {
	if reduced && sp.Name() == "register" {
		// Fast path: a read conflicts with the last write only; a write
		// conflicts with everything since (and including) the last write.
		// The window holds the last write (at index 0, if any) and the
		// reads after it.
		win = win[:0]
		for _, cur := range ops {
			if spec.IsRead(cur.OV.Op) {
				if len(win) > 0 && spec.IsWrite(win[0].OV.Op) {
					sink.emit(win[0], cur)
				}
				win = append(win, cur)
			} else {
				for _, prev := range win {
					sink.emit(prev, cur)
				}
				win = append(win[:0], cur)
			}
		}
		return win
	}
	for i, cur := range ops {
		for _, prev := range ops[:i] {
			if sp.Conflicts(prev.OV, cur.OV) {
				sink.emit(prev, cur)
			}
		}
	}
	return win
}

// conflictEdge maps a conflicting operation pair to its SG edge: at the
// children of the least common ancestor of the two accesses. The edge is
// degenerate (ok=false) when both accesses descend from the same child.
func conflictEdge(tr *tname.Tree, prev, cur event.AccessOp) (parent, from, to tname.TxID, ok bool) {
	if prev.Tx == cur.Tx {
		return 0, 0, 0, false
	}
	lca := tr.LCA(prev.Tx, cur.Tx)
	u := tr.ChildAncestor(lca, prev.Tx)
	u2 := tr.ChildAncestor(lca, cur.Tx)
	if u == u2 {
		return 0, 0, 0, false
	}
	return lca, u, u2, true
}

// Cycle describes a directed cycle found in one SG(β, T).
type Cycle struct {
	// Parent is the transaction whose sibling graph contains the cycle.
	Parent tname.TxID
	// Nodes are the children of Parent forming the cycle, in edge order;
	// the edge Nodes[len-1] → Nodes[0] closes it.
	Nodes []tname.TxID
	// Kinds labels the consecutive edges of the cycle.
	Kinds []EdgeKind
}

// Format renders the cycle with full names.
func (c *Cycle) Format(tr *tname.Tree) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle in SG(β, %s): ", tr.Name(c.Parent))
	for i, n := range c.Nodes {
		if i > 0 {
			fmt.Fprintf(&sb, " -[%s]-> ", c.Kinds[i-1])
		}
		sb.WriteString(tr.Label(n))
	}
	fmt.Fprintf(&sb, " -[%s]-> %s", c.Kinds[len(c.Kinds)-1], tr.Label(c.Nodes[0]))
	return sb.String()
}

// SiblingOrder is the certificate produced by an acyclic SG(β): for each
// transaction visible to T0 that has ordered children, a total order (a
// topological sort of SG(β, T)) on the children that occur in β. It
// realizes the paper's suitable sibling order R.
type SiblingOrder struct {
	tr *tname.Tree
	// ByParent maps each parent to its ordered children.
	ByParent map[tname.TxID][]tname.TxID
	// rank[t] is t's position among its ordered siblings.
	rank map[tname.TxID]int
}

// Rank returns the position of t in its sibling order and whether t is
// ordered at all.
func (r *SiblingOrder) Rank(t tname.TxID) (int, bool) {
	n, ok := r.rank[t]
	return n, ok
}

// CompareSiblings is a deterministic total order on siblings that extends
// R: siblings ranked by the topological sorts come first in rank order, and
// unranked siblings (which have no conflict or precedes constraints, hence
// may be placed anywhere) follow in name order. Using one shared total
// order for both the view computation and the serial-witness replay keeps
// the two consistent.
func (r *SiblingOrder) CompareSiblings(a, b tname.TxID) bool {
	if a == b {
		return false
	}
	ra, okA := r.rank[a]
	rb, okB := r.rank[b]
	switch {
	case okA && okB:
		return ra < rb
	case okA:
		return true
	case okB:
		return false
	default:
		return a < b
	}
}

// Less reports whether (a, b) ∈ the total extension of R_trans: a and b are
// ordered by CompareSiblings on the children of lca(a, b) they descend
// from. It panics when a and b are related by ancestry (R_trans never
// orders such pairs).
func (r *SiblingOrder) Less(a, b tname.TxID) bool {
	if r.tr.IsOrdered(a, b) {
		panic("core: SiblingOrder.Less on ancestrally related names")
	}
	lca := r.tr.LCA(a, b)
	u := r.tr.ChildAncestor(lca, a)
	u2 := r.tr.ChildAncestor(lca, b)
	return r.CompareSiblings(u, u2)
}

// SortSiblings returns the given sibling transactions in the certificate's
// total order (constrained children first in topological order, then
// unconstrained ones). The input is not modified.
func (r *SiblingOrder) SortSiblings(ts []tname.TxID) []tname.TxID {
	out := make([]tname.TxID, len(ts))
	copy(out, ts)
	sort.Slice(out, func(i, j int) bool { return r.CompareSiblings(out[i], out[j]) })
	return out
}

// SortOps sorts access operations by R_trans on their transaction
// components. The order is total on the operations of one behavior because
// R orders all sibling pairs that occur in it (Theorem 8's construction
// totally orders the children of every visible parent).
func (r *SiblingOrder) SortOps(ops []event.AccessOp) []event.AccessOp {
	out := make([]event.AccessOp, len(ops))
	copy(out, ops)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tx == out[j].Tx {
			return false
		}
		return r.Less(out[i].Tx, out[j].Tx)
	})
	return out
}

// ForgeOrderForTest builds a SiblingOrder from explicit per-parent child
// orders, bypassing the graph construction. It exists so tests can hand the
// witness machinery a *wrong* order and watch it refuse; production code
// must obtain orders from Acyclicity.
func ForgeOrderForTest(tr *tname.Tree, byParent map[tname.TxID][]tname.TxID) *SiblingOrder {
	order := &SiblingOrder{tr: tr, ByParent: byParent, rank: make(map[tname.TxID]int)}
	for _, kids := range byParent {
		for i, k := range kids {
			order.rank[k] = i
		}
	}
	return order
}

// Acyclicity checks SG(β) and, when it is acyclic, derives the sibling
// order certificate. On failure it returns the concrete cycle.
func (sg *SG) Acyclicity() (*SiblingOrder, *Cycle) {
	order := &SiblingOrder{tr: sg.tr, ByParent: make(map[tname.TxID][]tname.TxID), rank: make(map[tname.TxID]int)}
	// sg.parents is sorted ascending, so parents are processed in a
	// deterministic order and certificates are reproducible.
	for _, pgr := range sg.parents {
		topo, cyc := pgr.G.TopoSort()
		if cyc != nil {
			c := &Cycle{Parent: pgr.Parent}
			for _, n := range cyc {
				c.Nodes = append(c.Nodes, pgr.Children[n])
			}
			for i := range cyc {
				j := (i + 1) % len(cyc)
				c.Kinds = append(c.Kinds, pgr.kindAt(int32(cyc[i]), int32(cyc[j])))
			}
			return nil, c
		}
		kids := make([]tname.TxID, len(topo))
		for i, n := range topo {
			kids[i] = pgr.Children[n]
			order.rank[pgr.Children[n]] = i
		}
		order.ByParent[pgr.Parent] = kids
	}
	return order, nil
}

// DOT renders one digraph per materialized parent graph — every SG(β, T)
// that acquired at least one edge, in ascending parent order — concatenated.
// Parents whose children have no conflict or precedes constraints are never
// materialized and so do not appear.
func (sg *SG) DOT() string {
	var sb strings.Builder
	for _, pgr := range sg.parents {
		name := fmt.Sprintf("SG_%s", sg.tr.Name(pgr.Parent))
		sb.WriteString(pgr.G.DOT(name, func(v int) string { return sg.tr.Label(pgr.Children[v]) }))
	}
	return sb.String()
}
