package core

import (
	"fmt"

	"nestedsg/internal/event"
	"nestedsg/internal/graph"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Incremental maintains SG(β) online: Append consumes one event at a time
// and after the i-th call the internal state describes SG(β[:i]) exactly as
// Build(tr, β[:i]) would construct it. Cycle detection is per appended edge
// (Pearce–Kelly order maintenance in internal/graph), so a violating trace
// is rejected at its shortest bad prefix — the first i at which SG(β[:i])
// acquires a cycle — with the same certificate Build would produce there.
//
// Soundness of prefix verdicts rests on monotonicity: commits only
// accumulate, so visibility to T0 is monotone over prefixes, and with it
// both edge sources — a conflict edge needs its two accesses visible, a
// precedes edge needs the requesting parent visible, and the report/request
// position data it depends on is fixed at request time. Hence
// SG(β[:i]) ⊆ SG(β[:j]) edge-wise for i ≤ j: a cycle never dissolves, and
// rejecting at the first cycle agrees with the offline verdict on every
// extension. (The reduced register edge set is *not* prefix-monotone — a
// late-visible write can retroactively shrink earlier reads' windows — so
// the streaming checker always maintains the full conflict relation.)
//
// Events whose transactions are not yet visible are parked on their lowest
// uncommitted ancestor and admitted when a COMMIT releases them; each parked
// item re-walks only the suffix of its ancestor path above the released
// blocker, so admission costs amortized O(depth) per item.
type Incremental struct {
	tr  *tname.Tree
	seq int // raw events consumed

	committed map[tname.TxID]bool
	// parkedOps and parkedReqs key pending items by their blocker: the
	// lowest uncommitted ancestor (≠ Root) of the access / requesting
	// parent.
	parkedOps  map[tname.TxID][]pendingOp
	parkedReqs map[tname.TxID][]pendingReq

	// byObj holds the admitted (visible) operations per object, ascending
	// by seq; visOps holds all of them, ascending by seq — exactly
	// operations(visible(β-prefix, T0)) in β order.
	byObj  map[tname.ObjID][]pendingOp
	visOps []pendingOp

	// reported accumulates, per parent, the children reported so far —
	// visibility-independent, exactly as in the offline pass.
	reported map[tname.TxID][]tname.TxID

	parents map[tname.TxID]*ParentGraph
	// dyn mirrors each parent's edge structure in a Pearce–Kelly maintained
	// order; a non-nil AddEdge result is the cycle signal.
	dyn map[tname.TxID]*graph.Incremental

	cyclic     bool
	rejected   *Cycle
	rejectedAt int
}

// pendingOp is a visible-or-parked access operation tagged with the raw
// stream position of its REQUEST_COMMIT, which fixes its place in the
// chronological conflict order however late it becomes visible.
type pendingOp struct {
	op  event.AccessOp
	seq int
}

// pendingReq is a REQUEST_CREATE awaiting its parent's visibility. n is the
// length of reported[parent] at request time: precedes(β) relates only the
// siblings reported before the request, however late the edges materialize.
type pendingReq struct {
	parent tname.TxID
	child  tname.TxID
	n      int
}

// NewIncremental returns an empty streaming checker for the given system.
func NewIncremental(tr *tname.Tree) *Incremental {
	return &Incremental{
		tr:         tr,
		committed:  make(map[tname.TxID]bool),
		parkedOps:  make(map[tname.TxID][]pendingOp),
		parkedReqs: make(map[tname.TxID][]pendingReq),
		byObj:      make(map[tname.ObjID][]pendingOp),
		reported:   make(map[tname.TxID][]tname.TxID),
		parents:    make(map[tname.TxID]*ParentGraph),
		dyn:        make(map[tname.TxID]*graph.Incremental),
		rejectedAt: -1,
	}
}

// EventsSeen returns how many events have been appended.
func (inc *Incremental) EventsSeen() int { return inc.seq }

// Rejected returns the sticky verdict: the cycle certificate and the raw
// index of the event whose prefix first made SG cyclic, or (nil, -1) while
// every prefix so far is acyclic.
func (inc *Incremental) Rejected() (*Cycle, int) { return inc.rejected, inc.rejectedAt }

// Append consumes the next event of β. It returns nil while SG of the
// consumed prefix stays acyclic, and the cycle certificate — identical to
// Build(prefix).Acyclicity()'s — from the first violating prefix onward.
// Once non-nil the verdict is sticky: further events still maintain the
// bookkeeping cheaply but the certificate no longer changes.
func (inc *Incremental) Append(e event.Event) *Cycle {
	i := inc.seq
	inc.seq++
	switch e.Kind {
	case event.RequestCommit:
		if inc.tr.IsAccess(e.Tx) {
			x := inc.tr.AccessObject(e.Tx)
			op := pendingOp{op: event.AccessOp{Tx: e.Tx, Obj: x,
				OV: spec.OpVal{Op: inc.tr.AccessOp(e.Tx), Val: e.Val}}, seq: i}
			if blk, vis := inc.blocker(e.Tx); vis {
				inc.admitOp(op)
			} else {
				inc.parkedOps[blk] = append(inc.parkedOps[blk], op)
			}
		}

	case event.ReportCommit, event.ReportAbort:
		p := inc.tr.Parent(e.Tx)
		inc.reported[p] = append(inc.reported[p], e.Tx)

	case event.RequestCreate:
		p := inc.tr.Parent(e.Tx)
		req := pendingReq{parent: p, child: e.Tx, n: len(inc.reported[p])}
		if blk, vis := inc.blocker(p); vis {
			inc.admitReq(req)
		} else {
			inc.parkedReqs[blk] = append(inc.parkedReqs[blk], req)
		}

	case event.Commit:
		inc.commit(e.Tx)

	case event.Create, event.Abort, event.InformCommit, event.InformAbort, event.KindInvalid:
		// CREATE and ABORT contribute no edges (conflict(β) is defined on
		// REQUEST_COMMITs, precedes(β) on report/request pairs, and
		// visibility only consults commits); Inform kinds and invalid
		// events are not serial actions, so Build ignores them too.
	}

	if inc.cyclic && inc.rejected == nil {
		// First violating prefix: freeze the verdict. The event's effects
		// were applied in full above, so the snapshot is exactly
		// Build(β[:i+1]) and yields the identical certificate.
		_, cyc := inc.Snapshot().Acyclicity()
		if cyc == nil {
			panic("core: incremental cycle signal with acyclic snapshot")
		}
		inc.rejected, inc.rejectedAt = cyc, i
	}
	return inc.rejected
}

// blocker walks start's ancestor path toward the root and returns either
// (_, true) when every ancestor strictly below Root is committed — i.e. the
// transaction is visible to T0 — or the lowest uncommitted ancestor. The
// walk mirrors simple.Vis for the T0 oracle, including the trivial
// visibility of None (the parent of Root).
func (inc *Incremental) blocker(start tname.TxID) (tname.TxID, bool) {
	for u := start; u != tname.None; u = inc.tr.Parent(u) {
		if u == tname.Root {
			return tname.None, true
		}
		if !inc.committed[u] {
			return u, false
		}
	}
	return tname.None, true
}

// commit records COMMIT(t) and releases everything parked on t. Released
// items resume their ancestor walk above t; items still blocked re-park on
// the new blocker, so each item pays each ancestor edge at most once.
func (inc *Incremental) commit(t tname.TxID) {
	if inc.committed[t] {
		return
	}
	inc.committed[t] = true
	ops := inc.parkedOps[t]
	reqs := inc.parkedReqs[t]
	delete(inc.parkedOps, t)
	delete(inc.parkedReqs, t)
	next := inc.tr.Parent(t)
	blk, vis := inc.blocker(next)
	for _, op := range ops {
		if vis {
			inc.admitOp(op)
		} else {
			inc.parkedOps[blk] = append(inc.parkedOps[blk], op)
		}
	}
	for _, req := range reqs {
		if vis {
			inc.admitReq(req)
		} else {
			inc.parkedReqs[blk] = append(inc.parkedReqs[blk], req)
		}
	}
}

// admitOp splices a now-visible operation into its object's chronological
// list and relates it to every other visible operation on the object, in
// both directions: ops that became visible earlier may carry later stream
// positions, so the new arrival can be the chronological predecessor of
// some and the successor of others.
func (inc *Incremental) admitOp(op pendingOp) {
	x := op.op.Obj
	sp := inc.tr.Spec(x)
	list := inc.byObj[x]
	for _, other := range list {
		prev, cur := other, op
		if op.seq < other.seq {
			prev, cur = op, other
		}
		if sp.Conflicts(prev.op.OV, cur.op.OV) {
			if p, u, u2, ok := conflictEdge(inc.tr, prev.op, cur.op); ok {
				inc.addEdge(p, u, u2, EdgeConflict)
			}
		}
	}
	inc.byObj[x] = spliceBySeq(list, op)
	inc.visOps = spliceBySeq(inc.visOps, op)
}

// spliceBySeq inserts op into a seq-ascending list. Late admissions are
// commits of deep ancestors releasing old operations, so the insertion
// point is found from the back.
func spliceBySeq(list []pendingOp, op pendingOp) []pendingOp {
	i := len(list)
	for i > 0 && list[i-1].seq > op.seq {
		i--
	}
	list = append(list, pendingOp{})
	copy(list[i+1:], list[i:])
	list[i] = op
	return list
}

// admitReq materializes the precedes edges of one REQUEST_CREATE whose
// parent is now visible: from each sibling reported before the request to
// the requested child.
func (inc *Incremental) admitReq(req pendingReq) {
	for _, t := range inc.reported[req.parent][:req.n] {
		if t != req.child {
			inc.addEdge(req.parent, t, req.child, EdgePrecedes)
		}
	}
}

// addEdge records from→to in SG(β, parent) and feeds any new edge to the
// parent's Pearce–Kelly order, flagging the first cycle.
func (inc *Incremental) addEdge(parent, from, to tname.TxID, kind EdgeKind) {
	pg, ok := inc.parents[parent]
	if !ok {
		pg = newParentGraph(parent)
		inc.parents[parent] = pg
		inc.dyn[parent] = graph.NewIncremental(0)
	}
	d := inc.dyn[parent]
	f, t := pg.node(from), pg.node(to)
	for d.Len() < len(pg.Children) {
		d.AddNode()
	}
	key := [2]int32{int32(f), int32(t)}
	if _, dup := pg.Kinds[key]; dup {
		pg.Kinds[key] |= kind
		return
	}
	pg.Kinds[key] = kind
	if inc.cyclic {
		// Already rejected: keep the edge bookkeeping (Snapshot stays
		// truthful) but the stale order cannot answer further queries.
		return
	}
	if cyc := d.AddEdge(f, t); cyc != nil {
		inc.cyclic = true
	}
}

// Snapshot materializes SG of the consumed prefix; the result is
// structurally identical to Build(tr, prefix) and independent of the live
// state, which continues to accept Appends.
func (inc *Incremental) Snapshot() *SG {
	sg := &SG{tr: inc.tr, parents: make(map[tname.TxID]*ParentGraph, len(inc.parents))}
	for p, pg := range inc.parents {
		c := pg.clone()
		c.build()
		sg.parents[p] = c
	}
	for _, r := range inc.visOps {
		sg.VisibleOps = append(sg.VisibleOps, r.op)
	}
	return sg
}

// StreamPrefix feeds b's events through an Incremental and returns the raw
// index of the first event whose prefix has a cyclic SG, with the cycle
// certificate, or (-1, nil) when every prefix — hence b itself — has an
// acyclic SG. Note that acyclicity is one hypothesis of Theorem 8/19, not
// the whole check; callers wanting the full verdict run Check afterwards.
func StreamPrefix(tr *tname.Tree, b event.Behavior) (int, *Cycle) {
	inc := NewIncremental(tr)
	for _, e := range b {
		if cyc := inc.Append(e); cyc != nil {
			_, at := inc.Rejected()
			return at, cyc
		}
	}
	return -1, nil
}

// String summarizes the checker state for diagnostics.
func (inc *Incremental) String() string {
	if inc.rejected != nil {
		return fmt.Sprintf("incremental: rejected at event %d after %d events", inc.rejectedAt, inc.seq)
	}
	return fmt.Sprintf("incremental: %d events, %d parents, acyclic", inc.seq, len(inc.parents))
}
