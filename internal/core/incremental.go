package core

import (
	"fmt"

	"nestedsg/internal/event"
	"nestedsg/internal/graph"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Incremental maintains SG(β) online: Append consumes one event at a time
// and after the i-th call the internal state describes SG(β[:i]) exactly as
// Build(tr, β[:i]) would construct it. Cycle detection is per appended edge
// (Pearce–Kelly order maintenance in internal/graph), so a violating trace
// is rejected at its shortest bad prefix — the first i at which SG(β[:i])
// acquires a cycle — with the same certificate Build would produce there.
//
// Soundness of prefix verdicts rests on monotonicity: commits only
// accumulate, so visibility to T0 is monotone over prefixes, and with it
// both edge sources — a conflict edge needs its two accesses visible, a
// precedes edge needs the requesting parent visible, and the report/request
// position data it depends on is fixed at request time. Hence
// SG(β[:i]) ⊆ SG(β[:j]) edge-wise for i ≤ j: a cycle never dissolves, and
// rejecting at the first cycle agrees with the offline verdict on every
// extension. (The reduced register edge set is *not* prefix-monotone — a
// late-visible write can retroactively shrink earlier reads' windows — so
// the streaming checker always maintains the full conflict relation.)
//
// Events whose transactions are not yet visible are parked on their lowest
// uncommitted ancestor and admitted when a COMMIT releases them; each parked
// item re-walks only the suffix of its ancestor path above the released
// blocker, so admission costs amortized O(depth) per item.
//
// All bookkeeping is dense, indexed by the interned transaction and object
// names, and Reset rewinds the checker to the empty prefix while keeping
// every backing array — a long sequence of stream checks over one system
// type runs without steady-state allocations.
type Incremental struct {
	tr  *tname.Tree
	seq int // raw events consumed

	// Per transaction: the commit flag, the parked items keyed by their
	// blocker — the lowest uncommitted ancestor (≠ Root) of the access /
	// requesting parent — the reported children (precedes source), the
	// node index in the parent's graph (-1 until materialized; every tx
	// is a child of exactly one parent, so one array serves all graphs),
	// and the recycled per-parent structures.
	committed  []bool
	parkedOps  [][]pendingOp
	parkedReqs [][]pendingReq
	reported   [][]tname.TxID
	nodeOf     []int32
	pgOf       []*ParentGraph
	dynOf      []*graph.Incremental
	active     []bool

	// byObj holds the admitted (visible) operations per object, ascending
	// by seq; visOps holds all of them, ascending by seq — exactly
	// operations(visible(β-prefix, T0)) in β order.
	byObj  [][]pendingOp
	visOps []pendingOp

	// parents lists the materialized parent graphs in discovery order;
	// Snapshot sorts its clone of the list.
	parents []*ParentGraph

	// seen dedups (pair, kind) edge records, exactly as in Checker.
	seen map[edgeKey]struct{}

	cyclic     bool
	rejected   *Cycle
	rejectedAt int

	// sink, when set, observes every new deduped edge record as it enters
	// the graph — the export half of the partitioned certification scheme
	// (the Composer is the import half). Reset keeps it: the sink belongs
	// to the stream's owner, not to any one prefix.
	sink EdgeSink
}

// EdgeSink observes one new (parent, from, to, kind) edge record. The
// callback fires at most once per distinct record (the dedup map gates
// it), synchronously inside Append, before the cycle check — so a sink
// always sees the edge that closes a cycle.
type EdgeSink func(parent, from, to tname.TxID, kind EdgeKind)

// SetEdgeSink installs (or, with nil, removes) the edge observer.
func (inc *Incremental) SetEdgeSink(f EdgeSink) { inc.sink = f }

// pendingOp is a visible-or-parked access operation tagged with the raw
// stream position of its REQUEST_COMMIT, which fixes its place in the
// chronological conflict order however late it becomes visible.
type pendingOp struct {
	op  event.AccessOp
	seq int
}

// pendingReq is a REQUEST_CREATE awaiting its parent's visibility. n is the
// length of reported[parent] at request time: precedes(β) relates only the
// siblings reported before the request, however late the edges materialize.
type pendingReq struct {
	parent tname.TxID
	child  tname.TxID
	n      int
}

// NewIncremental returns an empty streaming checker for the given system.
func NewIncremental(tr *tname.Tree) *Incremental {
	inc := &Incremental{
		tr:         tr,
		seen:       make(map[edgeKey]struct{}),
		rejectedAt: -1,
	}
	inc.grow()
	return inc
}

// grow sizes the dense arrays to the current tree. The tree is append-only
// and may gain names between Appends (a generator interning fresh
// transactions mid-stream), so Append re-checks on every call.
func (inc *Incremental) grow() {
	if n := inc.tr.NumTx(); n > len(inc.committed) {
		for len(inc.committed) < n {
			inc.committed = append(inc.committed, false)
			inc.parkedOps = append(inc.parkedOps, nil)
			inc.parkedReqs = append(inc.parkedReqs, nil)
			inc.reported = append(inc.reported, nil)
			inc.nodeOf = append(inc.nodeOf, -1)
			inc.pgOf = append(inc.pgOf, nil)
			inc.dynOf = append(inc.dynOf, nil)
			inc.active = append(inc.active, false)
		}
	}
	if n := inc.tr.NumObjects(); n > len(inc.byObj) {
		for len(inc.byObj) < n {
			inc.byObj = append(inc.byObj, nil)
		}
	}
}

// Reset rewinds the checker to the empty prefix, retaining every backing
// array (including the recycled per-parent graphs and Pearce–Kelly orders)
// so the next stream over the same tree allocates nothing.
func (inc *Incremental) Reset() {
	inc.seq = 0
	clear(inc.committed)
	for i := range inc.parkedOps {
		inc.parkedOps[i] = inc.parkedOps[i][:0]
		inc.parkedReqs[i] = inc.parkedReqs[i][:0]
		inc.reported[i] = inc.reported[i][:0]
	}
	for _, pg := range inc.parents {
		for _, t := range pg.Children {
			inc.nodeOf[t] = -1
		}
		pg.Children = pg.Children[:0]
		pg.edges = pg.edges[:0]
		inc.active[pg.Parent] = false
		inc.dynOf[pg.Parent].Reset()
	}
	inc.parents = inc.parents[:0]
	for i := range inc.byObj {
		inc.byObj[i] = inc.byObj[i][:0]
	}
	inc.visOps = inc.visOps[:0]
	clear(inc.seen)
	inc.cyclic = false
	inc.rejected = nil
	inc.rejectedAt = -1
}

// EventsSeen returns how many events have been appended.
func (inc *Incremental) EventsSeen() int { return inc.seq }

// Rejected returns the sticky verdict: the cycle certificate and the raw
// index of the event whose prefix first made SG cyclic, or (nil, -1) while
// every prefix so far is acyclic.
func (inc *Incremental) Rejected() (*Cycle, int) { return inc.rejected, inc.rejectedAt }

// Append consumes the next event of β. It returns nil while SG of the
// consumed prefix stays acyclic, and the cycle certificate — identical to
// Build(prefix).Acyclicity()'s — from the first violating prefix onward.
// Once non-nil the verdict is sticky: further events still maintain the
// bookkeeping cheaply but the certificate no longer changes.
//
//sgvet:hotpath
func (inc *Incremental) Append(e event.Event) *Cycle {
	inc.grow()
	i := inc.seq
	inc.seq++
	switch e.Kind {
	case event.RequestCommit:
		if inc.tr.IsAccess(e.Tx) {
			x := inc.tr.AccessObject(e.Tx)
			op := pendingOp{op: event.AccessOp{Tx: e.Tx, Obj: x,
				OV: spec.OpVal{Op: inc.tr.AccessOp(e.Tx), Val: e.Val}}, seq: i}
			if blk, vis := inc.blocker(e.Tx); vis {
				inc.admitOp(op)
			} else {
				inc.parkedOps[blk] = append(inc.parkedOps[blk], op)
			}
		}

	case event.ReportCommit, event.ReportAbort:
		if e.Tx == tname.Root {
			// Garbage: Root has no parent to report to; Build skips this
			// identically (well-formedness would reject the trace).
			break
		}
		p := inc.tr.Parent(e.Tx)
		inc.reported[p] = append(inc.reported[p], e.Tx)

	case event.RequestCreate:
		if e.Tx == tname.Root {
			break
		}
		p := inc.tr.Parent(e.Tx)
		req := pendingReq{parent: p, child: e.Tx, n: len(inc.reported[p])}
		if blk, vis := inc.blocker(p); vis {
			inc.admitReq(req)
		} else {
			inc.parkedReqs[blk] = append(inc.parkedReqs[blk], req)
		}

	case event.Commit:
		inc.commit(e.Tx)

	case event.Create, event.Abort, event.InformCommit, event.InformAbort, event.KindInvalid:
		// CREATE and ABORT contribute no edges (conflict(β) is defined on
		// REQUEST_COMMITs, precedes(β) on report/request pairs, and
		// visibility only consults commits); Inform kinds and invalid
		// events are not serial actions, so Build ignores them too.
	}

	if inc.cyclic && inc.rejected == nil {
		inc.freezeVerdict(i)
	}
	return inc.rejected
}

// freezeVerdict pins the sticky certificate at the first violating prefix.
// The event's effects were applied in full by Append, so the snapshot is
// exactly Build(β[:i+1]) and yields the identical certificate. This runs at
// most once per behavior and materializes a whole SG, so it lives outside
// the zero-alloc Append body the hotalloc gate watches.
func (inc *Incremental) freezeVerdict(i int) {
	_, cyc := inc.Snapshot().Acyclicity()
	if cyc == nil {
		panic("core: incremental cycle signal with acyclic snapshot")
	}
	inc.rejected, inc.rejectedAt = cyc, i
}

// blocker walks start's ancestor path toward the root and returns either
// (_, true) when every ancestor strictly below Root is committed — i.e. the
// transaction is visible to T0 — or the lowest uncommitted ancestor. The
// walk mirrors simple.Vis for the T0 oracle, including the trivial
// visibility of None (the parent of Root).
//
//sgvet:hotpath
func (inc *Incremental) blocker(start tname.TxID) (tname.TxID, bool) {
	for u := start; u != tname.None; u = inc.tr.Parent(u) {
		if u == tname.Root {
			return tname.None, true
		}
		if !inc.committed[u] {
			return u, false
		}
	}
	return tname.None, true
}

// commit records COMMIT(t) and releases everything parked on t. Released
// items resume their ancestor walk above t; items still blocked re-park on
// the new blocker, so each item pays each ancestor edge at most once.
//
//sgvet:hotpath
func (inc *Incremental) commit(t tname.TxID) {
	if inc.committed[t] {
		return
	}
	inc.committed[t] = true
	ops := inc.parkedOps[t]
	reqs := inc.parkedReqs[t]
	// t is committed, so nothing parks on it again: truncating (rather than
	// nil-ing) keeps the backing arrays for the next Reset+stream.
	inc.parkedOps[t] = ops[:0]
	inc.parkedReqs[t] = reqs[:0]
	next := inc.tr.Parent(t)
	blk, vis := inc.blocker(next)
	for _, op := range ops {
		if vis {
			inc.admitOp(op)
		} else {
			inc.parkedOps[blk] = append(inc.parkedOps[blk], op)
		}
	}
	for _, req := range reqs {
		if vis {
			inc.admitReq(req)
		} else {
			inc.parkedReqs[blk] = append(inc.parkedReqs[blk], req)
		}
	}
}

// admitOp splices a now-visible operation into its object's chronological
// list and relates it to every other visible operation on the object, in
// both directions: ops that became visible earlier may carry later stream
// positions, so the new arrival can be the chronological predecessor of
// some and the successor of others.
//
//sgvet:hotpath
func (inc *Incremental) admitOp(op pendingOp) {
	x := op.op.Obj
	sp := inc.tr.Spec(x)
	list := inc.byObj[x]
	for _, other := range list {
		prev, cur := other, op
		if op.seq < other.seq {
			prev, cur = op, other
		}
		if sp.Conflicts(prev.op.OV, cur.op.OV) {
			if p, u, u2, ok := conflictEdge(inc.tr, prev.op, cur.op); ok {
				inc.addEdge(p, u, u2, EdgeConflict)
			}
		}
	}
	inc.byObj[x] = spliceBySeq(list, op)
	inc.visOps = spliceBySeq(inc.visOps, op)
}

// spliceBySeq inserts op into a seq-ascending list. Late admissions are
// commits of deep ancestors releasing old operations, so the insertion
// point is found from the back.
//
//sgvet:hotpath
func spliceBySeq(list []pendingOp, op pendingOp) []pendingOp {
	i := len(list)
	for i > 0 && list[i-1].seq > op.seq {
		i--
	}
	list = append(list, pendingOp{})
	copy(list[i+1:], list[i:])
	list[i] = op
	return list
}

// admitReq materializes the precedes edges of one REQUEST_CREATE whose
// parent is now visible: from each sibling reported before the request to
// the requested child.
//
//sgvet:hotpath
func (inc *Incremental) admitReq(req pendingReq) {
	for _, t := range inc.reported[req.parent][:req.n] {
		if t != req.child {
			inc.addEdge(req.parent, t, req.child, EdgePrecedes)
		}
	}
}

// addEdge records from→to in SG(β, parent) and feeds any new pair to the
// parent's Pearce–Kelly order, flagging the first cycle.
func (inc *Incremental) addEdge(parent, from, to tname.TxID, kind EdgeKind) {
	pg := inc.pgOf[parent]
	if pg == nil {
		pg = &ParentGraph{Parent: parent}
		inc.pgOf[parent] = pg
		inc.dynOf[parent] = graph.NewIncremental(0)
	}
	if !inc.active[parent] {
		inc.active[parent] = true
		inc.parents = append(inc.parents, pg)
	}
	d := inc.dynOf[parent]
	f := inc.node(pg, from)
	t := inc.node(pg, to)
	for d.Len() < len(pg.Children) {
		d.AddNode()
	}
	k := edgeKey{parent: parent, from: f, to: t, kind: kind}
	if _, dup := inc.seen[k]; dup {
		return
	}
	inc.seen[k] = struct{}{}
	pg.edges = append(pg.edges, Edge{From: f, To: t, Kind: kind})
	if inc.sink != nil {
		inc.sink(parent, from, to, kind)
	}
	if inc.cyclic {
		// Already rejected: keep the edge bookkeeping (Snapshot stays
		// truthful) but the stale order cannot answer further queries.
		return
	}
	// The pair may already be in the order under the other kind label;
	// AddEdge dedups internally, so feeding it again is a cheap no-op scan.
	if cyc := d.AddEdge(int(f), int(t)); cyc != nil {
		inc.cyclic = true
	}
}

// node returns t's node index in pg, materializing the child on first use.
// Discovery-order indices; Snapshot's freeze canonicalizes.
//
//sgvet:hotpath
func (inc *Incremental) node(pg *ParentGraph, t tname.TxID) int32 {
	if i := inc.nodeOf[t]; i >= 0 {
		return i
	}
	i := int32(len(pg.Children))
	pg.Children = append(pg.Children, t)
	inc.nodeOf[t] = i
	return i
}

// Counts reports the live size of the maintained graph: materialized parent
// graphs, child nodes across all of them, and distinct (pair, kind) edge
// records. It is O(parents) and does not materialize a snapshot, so a
// metrics endpoint can poll it cheaply.
func (inc *Incremental) Counts() (parents, nodes, edges int) {
	for _, pg := range inc.parents {
		nodes += len(pg.Children)
	}
	return len(inc.parents), nodes, len(inc.seen)
}

// Snapshot materializes SG of the consumed prefix; the result is
// structurally identical to Build(tr, prefix) and independent of the live
// state, which continues to accept Appends.
func (inc *Incremental) Snapshot() *SG {
	sg := &SG{tr: inc.tr}
	var fz freezeScratch
	for _, pg := range inc.parents {
		c := pg.clone()
		c.build(&fz)
		sg.parents = append(sg.parents, c)
	}
	sg.sortParents()
	for _, r := range inc.visOps {
		sg.VisibleOps = append(sg.VisibleOps, r.op)
	}
	return sg
}

// StreamPrefix feeds b's events through an Incremental and returns the raw
// index of the first event whose prefix has a cyclic SG, with the cycle
// certificate, or (-1, nil) when every prefix — hence b itself — has an
// acyclic SG. Note that acyclicity is one hypothesis of Theorem 8/19, not
// the whole check; callers wanting the full verdict run Check afterwards.
// Repeated streams over one tree should share a Checker and use its
// StreamPrefix method, which pools the Incremental across calls.
func StreamPrefix(tr *tname.Tree, b event.Behavior) (int, *Cycle) {
	return NewChecker(tr).StreamPrefix(b)
}

// String summarizes the checker state for diagnostics.
func (inc *Incremental) String() string {
	if inc.rejected != nil {
		return fmt.Sprintf("incremental: rejected at event %d after %d events", inc.rejectedAt, inc.seq)
	}
	return fmt.Sprintf("incremental: %d events, %d parents, acyclic", inc.seq, len(inc.parents))
}
