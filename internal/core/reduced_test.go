package core

import (
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

// TestFastPathEquivalence: the reduced construction must agree with the
// faithful one on the acyclicity verdict, and when acyclic, the reduced
// graph's derived order must be a valid order for the full graph (every
// full edge respected) — across generated traces from correct and broken
// protocols.
func TestFastPathEquivalence(t *testing.T) {
	type src struct {
		name string
		run  func(seed int64, tr *tname.Tree) (event.Behavior, error)
	}
	sources := []src{
		{"moss", func(seed int64, tr *tname.Tree) (event.Behavior, error) {
			root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 6, Depth: 1,
				Fanout: 3, Objects: 2, HotProb: 0.7, ParProb: 0.7, ReadRatio: 0.5})
			b, _, err := generic.Run(tr, root, generic.Options{Seed: seed * 3, Protocol: locking.Protocol{},
				AbortProb: 0.02, MaxAborts: 4})
			return b, err
		}},
		{"broken", func(seed int64, tr *tname.Tree) (event.Behavior, error) {
			root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 5, Depth: 1,
				Fanout: 3, Objects: 1, HotProb: 1, ParProb: 0.9, ReadRatio: 0.5})
			b, _, err := generic.Run(tr, root, generic.Options{Seed: seed * 7,
				Protocol: undolog.BrokenProtocol{Mode: undolog.SkipCommute}})
			return b, err
		}},
	}
	for _, s := range sources {
		s := s
		t.Run(s.name, func(t *testing.T) {
			cyclicSeen := false
			for seed := int64(0); seed < 20; seed++ {
				tr := tname.NewTree()
				b, err := s.run(seed, tr)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				full := Build(tr, b)
				red := BuildReduced(tr, b)
				if red.NumEdges() > full.NumEdges() {
					t.Fatalf("seed %d: reduction added edges (%d > %d)", seed, red.NumEdges(), full.NumEdges())
				}
				fullOrder, fullCyc := full.Acyclicity()
				redOrder, redCyc := red.Acyclicity()
				if (fullCyc == nil) != (redCyc == nil) {
					t.Fatalf("seed %d: verdicts differ: full cyclic=%v reduced cyclic=%v",
						seed, fullCyc != nil, redCyc != nil)
				}
				if fullCyc != nil {
					cyclicSeen = true
					continue
				}
				_ = fullOrder
				// The reduced order must respect every FULL edge: for each
				// full edge (a, b), the reduced order puts a before b.
				full.ForEachParent(func(p tname.TxID, pgr *ParentGraph) {
					_ = p
					for _, e := range pgr.Edges() {
						a := pgr.Children[e.From]
						bb := pgr.Children[e.To]
						if !redOrder.CompareSiblings(a, bb) {
							t.Fatalf("seed %d: reduced order violates full edge %s -> %s",
								seed, tr.Name(a), tr.Name(bb))
						}
					}
				})
			}
			if s.name == "broken" && !cyclicSeen {
				t.Error("broken source produced no cycles; the equivalence is untested on the cyclic side")
			}
		})
	}
}

// TestReducedDropsRedundantEdges pins the reduction actually reducing:
// three writes in a row produce two edges instead of three.
func TestReducedDropsRedundantEdges(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", specRegister())
	tops := make([]tname.TxID, 3)
	accs := make([]tname.TxID, 3)
	for i := range tops {
		tops[i] = tr.Child(tname.Root, string(rune('a'+i)))
		accs[i] = tr.Access(tops[i], "w", x, specWriteOp(int64(i)))
	}
	var b event.Behavior
	b = append(b, event.NewEvent(event.Create, tname.Root))
	for i := range tops {
		b = append(b,
			event.NewEvent(event.RequestCreate, tops[i]),
			event.NewEvent(event.Create, tops[i]),
			event.NewEvent(event.RequestCreate, accs[i]),
			event.NewEvent(event.Create, accs[i]),
			event.NewValEvent(event.RequestCommit, accs[i], specOK()),
			event.NewEvent(event.Commit, accs[i]),
			event.NewValEvent(event.ReportCommit, accs[i], specOK()),
			event.NewValEvent(event.RequestCommit, tops[i], specNil()),
			event.NewEvent(event.Commit, tops[i]),
		)
	}
	full := Build(tr, b)
	red := BuildReduced(tr, b)
	if full.NumEdges() != 3 { // a→b, a→c, b→c
		t.Errorf("full edges = %d, want 3", full.NumEdges())
	}
	if red.NumEdges() != 2 { // a→b, b→c
		t.Errorf("reduced edges = %d, want 2", red.NumEdges())
	}
}

// tiny spec helpers local to these tests.
func specRegister() spec.Spec     { return spec.Register{} }
func specWriteOp(v int64) spec.Op { return spec.Op{Kind: spec.OpWrite, Arg: spec.Int(v)} }
func specOK() spec.Value          { return spec.OK }
func specNil() spec.Value         { return spec.Nil }
