package core

import (
	"fmt"

	"nestedsg/internal/event"
	"nestedsg/internal/graph"
	"nestedsg/internal/simple"
	"nestedsg/internal/tname"
)

// AuditSuitability verifies, directly against the definitions of §2.3.2,
// that the sibling order produced by Acyclicity is suitable for β and T0:
//
//  1. R orders every pair of sibling transactions that are lowtransactions
//     of events in visible(β, T0);
//  2. R_event(β) and affects(β) are consistent partial orders on the events
//     of visible(β, T0) — checked by confirming that the union of the
//     directly-affects edges and the R_event edges is acyclic.
//
// The Theorem 8 proof establishes suitability once and for all; this audit
// re-derives it per trace and is quadratic in the trace length, so it is
// used by the test suite (and cmd/sgcheck -deep) rather than the hot path.
func AuditSuitability(tr *tname.Tree, b event.Behavior, order *SiblingOrder) error {
	vis := simple.VisibleTo(tr, b.Serial(), tname.Root)

	// Condition 1: all sibling lowtransaction pairs ordered.
	lowSet := make(map[tname.TxID]bool)
	for _, e := range vis {
		lowSet[e.LowTransaction(tr)] = true
	}
	lows := make([]tname.TxID, 0, len(lowSet))
	for t := range lowSet {
		lows = append(lows, t)
	}
	// R is realized as the total extension CompareSiblings (ranked children
	// in topological order, unconstrained children after them); verify it
	// is a strict total order on each sibling pair.
	for i := 0; i < len(lows); i++ {
		for j := i + 1; j < len(lows); j++ {
			a, bb := lows[i], lows[j]
			if a == bb || tr.Parent(a) != tr.Parent(bb) {
				continue
			}
			if order.CompareSiblings(a, bb) == order.CompareSiblings(bb, a) {
				return fmt.Errorf("suitability: siblings %s and %s are lowtransactions in visible(β,T0) but R does not strictly order them",
					tr.Name(a), tr.Name(bb))
			}
		}
	}

	// Condition 2: union of directly-affects and R_event edges acyclic.
	g := graph.New(len(vis))

	// directly-affects: same-transaction program order (chain suffices for
	// reachability) ...
	lastByTx := make(map[tname.TxID]int)
	// ... plus the request/decision/report causal pairs.
	reqCreateIdx := make(map[tname.TxID]int)
	reqCommitIdx := make(map[tname.TxID]int)
	completionIdx := make(map[tname.TxID]int)
	for i, e := range vis {
		if !e.Kind.IsCompletion() {
			t := e.Transaction(tr)
			if prev, ok := lastByTx[t]; ok {
				g.AddEdge(prev, i)
			}
			lastByTx[t] = i
		}
		switch e.Kind {
		case event.RequestCreate:
			reqCreateIdx[e.Tx] = i
		case event.Create:
			if j, ok := reqCreateIdx[e.Tx]; ok {
				g.AddEdge(j, i)
			}
		case event.RequestCommit:
			reqCommitIdx[e.Tx] = i
		case event.Commit:
			if j, ok := reqCommitIdx[e.Tx]; ok {
				g.AddEdge(j, i)
			}
			completionIdx[e.Tx] = i
		case event.Abort:
			if j, ok := reqCreateIdx[e.Tx]; ok {
				g.AddEdge(j, i)
			}
			completionIdx[e.Tx] = i
		case event.ReportCommit, event.ReportAbort:
			if j, ok := completionIdx[e.Tx]; ok {
				g.AddEdge(j, i)
			}
		default:
			// Inform kinds never occur in visible serial actions.
		}
	}

	// R_event(β): (φ, π) when lowtransactions are distinct, unrelated by
	// ancestry, and ordered by R_trans.
	for i := 0; i < len(vis); i++ {
		ti := vis[i].LowTransaction(tr)
		for j := 0; j < len(vis); j++ {
			if i == j {
				continue
			}
			tj := vis[j].LowTransaction(tr)
			if ti == tj || tr.IsOrdered(ti, tj) {
				continue
			}
			if order.Less(ti, tj) {
				g.AddEdge(i, j)
			}
		}
	}

	if _, cyc := g.TopoSort(); cyc != nil {
		return fmt.Errorf("suitability: R_event(β) and affects(β) are inconsistent: cycle through events %v", cyc)
	}
	return nil
}
