//go:build !race

// Allocation-regression tests for the pooled Checker. The race detector
// instruments allocations, so the zero-alloc assertions only hold in
// ordinary builds; the build tag keeps `go test -race` green.

package core

import (
	"testing"

	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/tname"
	"nestedsg/internal/workload"
)

func TestCheckerReuseSteadyStateAllocs(t *testing.T) {
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 11, TopLevel: 6, Depth: 1,
		Fanout: 3, Objects: 3, ParProb: 0.6})
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 33, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}

	c := NewChecker(tr)
	c.Check(b) // warm up: grow the pools once

	if n := testing.AllocsPerRun(20, func() { c.Build(b) }); n > 0 {
		t.Errorf("Checker.Build allocates %.1f/op after warm-up, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { c.StreamPrefix(b) }); n > 0 {
		t.Errorf("Checker.StreamPrefix allocates %.1f/op after warm-up, want 0", n)
	}
	// Check materializes a fresh Result and certificate views for the
	// caller, so it cannot be literally zero; the pooled part is the graph
	// construction, which the Build assertion above pins at 0. Here require
	// that reuse saves at least a quarter of the one-shot allocations, so a
	// regression back to per-call graph rebuilds cannot hide behind the
	// (legitimately allocating) Result materialization.
	reused := testing.AllocsPerRun(20, func() { c.Check(b) })
	oneShot := testing.AllocsPerRun(20, func() { Check(tr, b) })
	if reused*4 > oneShot*3 {
		t.Errorf("Checker.Check reuse allocates %.1f/op vs %.1f/op one-shot; want ≤ 75%%", reused, oneShot)
	}
}

func TestIncrementalResetSteadyStateAllocs(t *testing.T) {
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 19, TopLevel: 5, Depth: 1,
		Fanout: 3, Objects: 3, ParProb: 0.5})
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 57, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}

	inc := NewIncremental(tr)
	feed := func() {
		inc.Reset()
		for _, e := range b {
			if cyc := inc.Append(e); cyc != nil {
				t.Fatal("behavior unexpectedly rejected")
			}
		}
	}
	feed() // warm up
	if n := testing.AllocsPerRun(20, feed); n > 0 {
		t.Errorf("Incremental Reset+Append allocates %.1f/op after warm-up, want 0", n)
	}
}
