package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/simple"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

// sgEqual compares two serialization graphs structurally: same parents,
// same canonical children, same labeled edges, same visible operations.
func sgEqual(t *testing.T, ctx string, got, want *SG) {
	t.Helper()
	if !reflect.DeepEqual(got.VisibleOps, want.VisibleOps) {
		t.Fatalf("%s: VisibleOps differ:\n got %v\nwant %v", ctx, got.VisibleOps, want.VisibleOps)
	}
	if len(got.Parents()) != len(want.Parents()) {
		t.Fatalf("%s: parent sets differ: %d vs %d", ctx, len(got.Parents()), len(want.Parents()))
	}
	for p, wpg := range want.Parents() {
		gpg := got.Parent(p)
		if gpg == nil {
			t.Fatalf("%s: missing parent %d", ctx, p)
		}
		if !reflect.DeepEqual(gpg.Children, wpg.Children) {
			t.Fatalf("%s: SG(β,%d) children differ:\n got %v\nwant %v", ctx, p, gpg.Children, wpg.Children)
		}
		if !reflect.DeepEqual(gpg.Edges(), wpg.Edges()) {
			t.Fatalf("%s: SG(β,%d) edges differ:\n got %v\nwant %v", ctx, p, gpg.Edges(), wpg.Edges())
		}
	}
}

// cycleEqual compares cycle certificates field by field.
func cycleEqual(t *testing.T, ctx string, got, want *Cycle) {
	t.Helper()
	if got.Parent != want.Parent || !reflect.DeepEqual(got.Nodes, want.Nodes) ||
		!reflect.DeepEqual(got.Kinds, want.Kinds) {
		t.Fatalf("%s: cycles differ:\n got %+v\nwant %+v", ctx, got, want)
	}
}

// checkDifferential runs the full streaming-vs-offline comparison on one
// trace: identical snapshots on every outcome, the rejection prefix is
// shortest, and certificates (cycle or sibling ranks) agree.
func checkDifferential(t *testing.T, ctx string, tr *tname.Tree, b event.Behavior) (rejected bool) {
	t.Helper()
	inc := NewIncremental(tr)
	var firstCyc *Cycle
	at := -1
	for i, e := range b {
		if cyc := inc.Append(e); cyc != nil && firstCyc == nil {
			firstCyc = cyc
			_, at = inc.Rejected()
			if at != i {
				t.Fatalf("%s: rejection reported at %d while appending event %d", ctx, at, i)
			}
		}
	}
	full := Build(tr, b)
	_, fullCyc := full.Acyclicity()

	if firstCyc == nil {
		if fullCyc != nil {
			t.Fatalf("%s: stream accepted but Build found %+v", ctx, fullCyc)
		}
		sgEqual(t, ctx+" (accepted)", inc.Snapshot(), full)
		// Certificates: identical sibling ranks.
		incOrder, incCyc := inc.Snapshot().Acyclicity()
		fullOrder, _ := full.Acyclicity()
		if incCyc != nil {
			t.Fatalf("%s: snapshot of accepted stream is cyclic", ctx)
		}
		if !reflect.DeepEqual(incOrder.ByParent, fullOrder.ByParent) {
			t.Fatalf("%s: sibling orders differ:\n got %v\nwant %v", ctx, incOrder.ByParent, fullOrder.ByParent)
		}
		return false
	}

	if fullCyc == nil {
		t.Fatalf("%s: stream rejected at %d but Build is acyclic", ctx, at)
	}
	// The rejection prefix is the shortest bad one, and its certificate is
	// Build's certificate for that prefix.
	prefix := Build(tr, b[:at+1])
	_, wantCyc := prefix.Acyclicity()
	if wantCyc == nil {
		t.Fatalf("%s: Build(β[:%d]) acyclic despite stream rejection there", ctx, at+1)
	}
	cycleEqual(t, ctx, firstCyc, wantCyc)
	if at > 0 {
		before := Build(tr, b[:at])
		if _, c := before.Acyclicity(); c != nil {
			t.Fatalf("%s: Build(β[:%d]) already cyclic; rejection at %d is not the shortest prefix", ctx, at, at)
		}
	}
	sgEqual(t, ctx+" (rejected)", inc.Snapshot(), full)
	return true
}

// protocolTrace generates a trace from a real protocol run — the moss
// locking protocol (correct) or a broken undo-log variant (cyclic).
func protocolTrace(t *testing.T, name string, seed int64, tr *tname.Tree) event.Behavior {
	t.Helper()
	switch name {
	case "moss":
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 6, Depth: 1,
			Fanout: 3, Objects: 2, HotProb: 0.7, ParProb: 0.7, ReadRatio: 0.5})
		b, _, err := generic.Run(tr, root, generic.Options{Seed: seed * 3, Protocol: locking.Protocol{},
			AbortProb: 0.02, MaxAborts: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return b
	case "broken":
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 5, Depth: 1,
			Fanout: 3, Objects: 1, HotProb: 1, ParProb: 0.9, ReadRatio: 0.5})
		b, _, err := generic.Run(tr, root, generic.Options{Seed: seed * 7,
			Protocol: undolog.BrokenProtocol{Mode: undolog.SkipCommute}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return b
	}
	t.Fatalf("unknown source %q", name)
	return nil
}

// TestIncrementalMatchesBuildOnWorkloads: full differential over generated
// traces from a correct protocol and a violation-producing one.
func TestIncrementalMatchesBuildOnWorkloads(t *testing.T) {
	for _, name := range []string{"moss", "broken"} {
		name := name
		t.Run(name, func(t *testing.T) {
			rejections := 0
			for seed := int64(0); seed < 20; seed++ {
				tr := tname.NewTree()
				b := protocolTrace(t, name, seed, tr)
				if checkDifferential(t, name, tr, b) {
					rejections++
				}
			}
			if name == "broken" && rejections == 0 {
				t.Error("broken source produced no rejections; the cyclic side is untested")
			}
			if name == "moss" && rejections != 0 {
				t.Error("moss protocol must never produce a cyclic SG")
			}
		})
	}
}

// TestIncrementalPrefixInvariant: after every single event, the streaming
// state snapshots to exactly Build of that prefix — the strong form of the
// prefix-correctness claim, on a trace small enough to afford O(n²) checks.
func TestIncrementalPrefixInvariant(t *testing.T) {
	tr := tname.NewTree()
	b := protocolTrace(t, "moss", 3, tr)
	if len(b) > 120 {
		b = b[:120]
	}
	inc := NewIncremental(tr)
	for i, e := range b {
		if cyc := inc.Append(e); cyc != nil {
			t.Fatalf("moss prefix rejected at %d", i)
		}
		sgEqual(t, "prefix", inc.Snapshot(), Build(tr, b[:i+1]))
	}
}

// TestIncrementalMatchesBuildOnGarbage: prefix semantics must also hold on
// arbitrary ill-formed event soup — the construction is defined for any
// serial-action sequence.
func TestIncrementalMatchesBuildOnGarbage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, names := randomSystem(rng)
		b := randomEvents(rng, tr, names, 1+rng.Intn(60))
		inc := NewIncremental(tr)
		var at = -1
		for _, e := range b {
			if cyc := inc.Append(e); cyc != nil && at < 0 {
				_, at = inc.Rejected()
			}
		}
		full := Build(tr, b)
		if !reflect.DeepEqual(inc.Snapshot().VisibleOps, full.VisibleOps) {
			return false
		}
		_, fullCyc := full.Acyclicity()
		if (at >= 0) != (fullCyc != nil) {
			return false
		}
		if at >= 0 {
			if _, c := Build(tr, b[:at+1]).Acyclicity(); c == nil {
				return false
			}
			if at > 0 {
				if _, c := Build(tr, b[:at]).Acyclicity(); c != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamPrefixReportsRawIndex: the reported index addresses the raw
// event stream (what sgcheck -stream prints), including non-serial events.
func TestStreamPrefixReportsRawIndex(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := tname.NewTree()
		b := protocolTrace(t, "broken", seed, tr)
		at, cyc := StreamPrefix(tr, b)
		if at < 0 {
			continue
		}
		if cyc == nil {
			t.Fatalf("seed %d: index without certificate", seed)
		}
		if at >= len(b) {
			t.Fatalf("seed %d: index %d out of range", seed, at)
		}
		if _, c := Build(tr, b[:at+1]).Acyclicity(); c == nil {
			t.Fatalf("seed %d: prefix %d not cyclic", seed, at+1)
		}
		return
	}
	t.Fatal("no rejecting trace found")
}

// FuzzIncrementalDifferential decodes fuzz-discovered traces and pins the
// streaming checker to the offline constructions. Seeds come from the
// committed FuzzTraceRoundTrip corpus.
func FuzzIncrementalDifferential(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, b, err := event.ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkDifferential(t, "fuzz", tr, b)
		// On simple behaviors the reduced construction must agree on the
		// verdict too (its equivalence argument assumes well-formedness).
		if simple.CheckWellFormed(tr, b.Serial()) != nil {
			return
		}
		_, fullCyc := Build(tr, b).Acyclicity()
		_, redCyc := BuildReduced(tr, b).Acyclicity()
		if (fullCyc == nil) != (redCyc == nil) {
			t.Fatalf("reduced verdict differs: full cyclic=%v reduced cyclic=%v",
				fullCyc != nil, redCyc != nil)
		}
	})
}
