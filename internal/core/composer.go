package core

import (
	"fmt"

	"nestedsg/internal/graph"
	"nestedsg/internal/tname"
)

// Composer rebuilds SG(β) from edge *records* rather than events. It is
// the receiving half of the partitioned certification scheme
// (internal/part): each partition streams its local event sub-stream
// through an Incremental and exports the edges it derives; the Composer
// unions those edge sets into the global graph and runs the same
// per-edge Pearce–Kelly cycle detection over the union.
//
// Correctness rests on two facts. First, SG(β) is a pure function of its
// edge set — Snapshot applies the same canonical freeze as Build, so two
// edge multisets with equal support produce byte-identical DOT renderings
// regardless of arrival order or duplication. Second, edge records are
// monotone: partitions only ever add edges (visibility is monotone over
// prefixes, see Incremental), so a cycle detected in the union never
// dissolves and the composed verdict is sticky, exactly like the
// single-stream checker's.
//
// The dense bookkeeping mirrors Incremental: nodeOf is indexed by the
// interned transaction name (every transaction is a child of exactly one
// parent, so one array serves all parent graphs), and Reset rewinds to
// the empty graph while keeping every backing array.
type Composer struct {
	tr *tname.Tree

	// Per transaction: the node index in its parent's graph (-1 until
	// materialized) and the recycled per-parent structures.
	nodeOf []int32
	pgOf   []*ParentGraph
	dynOf  []*graph.Incremental
	active []bool

	// parents lists the materialized parent graphs in arrival order;
	// Snapshot sorts its clone of the list.
	parents []*ParentGraph

	// seen dedups (pair, kind) edge records, exactly as in Incremental.
	seen map[edgeKey]struct{}

	cyclic bool
}

// NewComposer returns an empty edge-fed graph for the given system.
func NewComposer(tr *tname.Tree) *Composer {
	c := &Composer{tr: tr, seen: make(map[edgeKey]struct{})}
	c.grow()
	return c
}

// grow sizes the dense arrays to the current tree; the tree is append-only
// and may gain names between AddEdges, so AddEdge re-checks on every call.
func (c *Composer) grow() {
	if n := c.tr.NumTx(); n > len(c.nodeOf) {
		for len(c.nodeOf) < n {
			c.nodeOf = append(c.nodeOf, -1)
			c.pgOf = append(c.pgOf, nil)
			c.dynOf = append(c.dynOf, nil)
			c.active = append(c.active, false)
		}
	}
}

// AddEdge records from→to in SG(β, parent) and feeds any new pair to the
// parent's Pearce–Kelly order, flagging the first cycle. It reports
// whether the record was new — a duplicate (already delivered by this or
// another partition) is a no-op.
func (c *Composer) AddEdge(parent, from, to tname.TxID, kind EdgeKind) bool {
	c.grow()
	pg := c.pgOf[parent]
	if pg == nil {
		pg = &ParentGraph{Parent: parent}
		c.pgOf[parent] = pg
		c.dynOf[parent] = graph.NewIncremental(0)
	}
	if !c.active[parent] {
		c.active[parent] = true
		c.parents = append(c.parents, pg)
	}
	d := c.dynOf[parent]
	f := c.node(pg, from)
	t := c.node(pg, to)
	for d.Len() < len(pg.Children) {
		d.AddNode()
	}
	k := edgeKey{parent: parent, from: f, to: t, kind: kind}
	if _, dup := c.seen[k]; dup {
		return false
	}
	c.seen[k] = struct{}{}
	pg.edges = append(pg.edges, Edge{From: f, To: t, Kind: kind})
	if c.cyclic {
		// Already rejected: keep the edge bookkeeping (Snapshot stays
		// truthful) but the stale order cannot answer further queries.
		return true
	}
	if cyc := d.AddEdge(int(f), int(t)); cyc != nil {
		c.cyclic = true
	}
	return true
}

// node returns t's node index in pg, materializing the child on first use.
//
//sgvet:hotpath
func (c *Composer) node(pg *ParentGraph, t tname.TxID) int32 {
	if i := c.nodeOf[t]; i >= 0 {
		return i
	}
	i := int32(len(pg.Children))
	pg.Children = append(pg.Children, t)
	c.nodeOf[t] = i
	return i
}

// Cyclic reports the sticky verdict: whether any delivered edge closed a
// cycle in some parent graph.
func (c *Composer) Cyclic() bool { return c.cyclic }

// Counts reports the live size of the composed graph: materialized parent
// graphs, child nodes across all of them, and distinct (pair, kind) edge
// records. O(parents); cheap enough for a metrics endpoint to poll.
func (c *Composer) Counts() (parents, nodes, edges int) {
	for _, pg := range c.parents {
		nodes += len(pg.Children)
	}
	return len(c.parents), nodes, len(c.seen)
}

// Snapshot materializes the composed SG. Given the full edge set of some
// prefix, the result is structurally identical to Build over that prefix —
// same canonical freeze, same DOT bytes. VisibleOps is left empty: the
// composer sees edges, not operations; the audit currency is the DOT
// rendering, which does not include them.
func (c *Composer) Snapshot() *SG {
	sg := &SG{tr: c.tr}
	var fz freezeScratch
	for _, pg := range c.parents {
		cl := pg.clone()
		cl.build(&fz)
		sg.parents = append(sg.parents, cl)
	}
	sg.sortParents()
	return sg
}

// Reset rewinds the composer to the empty graph, retaining every backing
// array so the next composition over the same tree allocates nothing.
func (c *Composer) Reset() {
	for _, pg := range c.parents {
		for _, t := range pg.Children {
			c.nodeOf[t] = -1
		}
		pg.Children = pg.Children[:0]
		pg.edges = pg.edges[:0]
		c.active[pg.Parent] = false
		c.dynOf[pg.Parent].Reset()
	}
	c.parents = c.parents[:0]
	clear(c.seen)
	c.cyclic = false
}

// String summarizes the composer state for diagnostics.
func (c *Composer) String() string {
	if c.cyclic {
		return fmt.Sprintf("composer: %d parents, %d edges, cyclic", len(c.parents), len(c.seen))
	}
	return fmt.Sprintf("composer: %d parents, %d edges, acyclic", len(c.parents), len(c.seen))
}
