package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"nestedsg/internal/tname"
)

// TestParallelBuildMatchesSequential: for every worker count the parallel
// construction must be structurally identical to the sequential one —
// graphs, certificates and views — on correct and violating traces.
func TestParallelBuildMatchesSequential(t *testing.T) {
	for _, name := range []string{"moss", "broken"} {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				tr := tname.NewTree()
				b := protocolTrace(t, name, seed, tr)
				want := Build(tr, b)
				wantRed := BuildReduced(tr, b)
				for _, workers := range []int{1, 2, 4, 8} {
					got := BuildParallel(tr, b, workers)
					sgEqual(t, name, got, want)
					gotRed := BuildReducedParallel(tr, b, workers)
					sgEqual(t, name+" reduced", gotRed, wantRed)

					wantOrder, wantCyc := want.Acyclicity()
					gotOrder, gotCyc := got.Acyclicity()
					if (wantCyc == nil) != (gotCyc == nil) {
						t.Fatalf("seed %d workers %d: verdicts differ", seed, workers)
					}
					if wantCyc != nil {
						cycleEqual(t, name, gotCyc, wantCyc)
						continue
					}
					if !reflect.DeepEqual(gotOrder.ByParent, wantOrder.ByParent) {
						t.Fatalf("seed %d workers %d: orders differ", seed, workers)
					}
				}
			}
		})
	}
}

// TestCheckParallelMatchesCheck compares the end-to-end checkers, including
// the certificate views.
func TestCheckParallelMatchesCheck(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tr := tname.NewTree()
		b := protocolTrace(t, "moss", seed, tr)
		want := Check(tr, b)
		got := CheckParallel(tr, b, 4)
		if got.OK != want.OK {
			t.Fatalf("seed %d: OK differs", seed)
		}
		if !want.OK {
			continue
		}
		if !reflect.DeepEqual(got.Certificate.Order.ByParent, want.Certificate.Order.ByParent) {
			t.Fatalf("seed %d: orders differ", seed)
		}
		if !reflect.DeepEqual(got.Certificate.Views, want.Certificate.Views) {
			t.Fatalf("seed %d: views differ", seed)
		}
	}
}

// TestParallelBuildOnGarbage: worker fan-out must not disturb the
// construction on arbitrary event soup either.
func TestParallelBuildOnGarbage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, names := randomSystem(rng)
		b := randomEvents(rng, tr, names, 1+rng.Intn(60))
		want := Build(tr, b)
		got := BuildParallel(tr, b, 1+rng.Intn(8))
		if !reflect.DeepEqual(got.VisibleOps, want.VisibleOps) {
			return false
		}
		if len(got.Parents()) != len(want.Parents()) {
			return false
		}
		for p, wpg := range want.Parents() {
			gpg := got.Parent(p)
			if gpg == nil || !reflect.DeepEqual(gpg.Children, wpg.Children) ||
				!reflect.DeepEqual(gpg.Edges(), wpg.Edges()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
