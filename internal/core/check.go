package core

import (
	"fmt"
	"sort"
	"strings"

	"nestedsg/internal/event"
	"nestedsg/internal/simple"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// View is view(β, T0, R, X): the operations of X visible to T0, ordered by
// R_trans on their transaction components (§2.3.2).
type View struct {
	Obj tname.ObjID
	Ops []event.AccessOp
}

// Certificate is the positive outcome of the Theorem 8/19 check: evidence
// from which serial correctness for T0 follows, and from which an explicit
// serial witness behavior can be replayed (internal/serial).
type Certificate struct {
	// Order is the suitable sibling order R, realized as a topological sort
	// of each SG(β, T).
	Order *SiblingOrder
	// Views holds view(β, T0, R, X) for every object with visible
	// operations; each was verified to be a finite behavior of S_X.
	Views []View
}

// Result is the full outcome of checking a behavior against Theorem 8/19.
// Exactly one of the failure fields is non-nil when OK is false.
type Result struct {
	// OK reports that the behavior satisfied every hypothesis, hence is
	// serially correct for T0.
	OK bool

	// WFErr is set when the behavior violates the simple-system axioms —
	// the trace is not a simple behavior and the theorem does not speak
	// about it.
	WFErr error
	// ValueViolations is set when the behavior does not have appropriate
	// return values (§3.2 / §6.1).
	ValueViolations []simple.ValueViolation
	// Cycle is set when SG(β) has a cycle.
	Cycle *Cycle
	// ViewErr is set if a view failed to replay as a behavior of its serial
	// object. Under Proposition 7/18 this cannot happen once return values
	// are appropriate and SG(β) is acyclic; a non-nil ViewErr therefore
	// indicates a bug in a Spec's Conflicts table (a non-conservative
	// entry), and the checker reports it rather than trusting the table.
	ViewErr error

	// Certificate is set when OK.
	Certificate *Certificate
	// SG is the constructed graph (always set unless WFErr).
	SG *SG
}

// Summary renders a one-line outcome.
func (r *Result) Summary(tr *tname.Tree) string {
	switch {
	case r.OK:
		return fmt.Sprintf("serially correct for T0 (SG edges: %d)", r.SG.NumEdges())
	case r.WFErr != nil:
		return "not a simple behavior: " + r.WFErr.Error()
	case len(r.ValueViolations) > 0:
		v := r.ValueViolations[0]
		return "inappropriate return values: " + v.Error(tr)
	case r.Cycle != nil:
		return r.Cycle.Format(tr)
	case r.ViewErr != nil:
		return "view replay failed: " + r.ViewErr.Error()
	}
	return "unknown failure"
}

// Check verifies the hypotheses of Theorem 8 (read/write objects) and
// Theorem 19 (arbitrary types) on the serial actions of b:
//
//  1. b's serial projection satisfies the simple-system axioms;
//  2. b has appropriate return values;
//  3. SG(β) is acyclic;
//  4. (verification of the conclusion's mechanism) each view(β, T0, R, X)
//     replays as a finite behavior of S_X.
//
// When all hold, the behavior is serially correct for T0 and the
// certificate allows a serial witness to be constructed.
//
// Check is a one-shot wrapper: repeated checks over one system type should
// share a Checker, whose Check method pools all working memory.
func Check(tr *tname.Tree, b event.Behavior) *Result {
	return NewChecker(tr).Check(b)
}

// ComputeViews orders the visible operations of each object by R_trans and
// verifies each resulting view is a behavior of the serial object. The
// error identifies the object and operation that failed.
func ComputeViews(tr *tname.Tree, sg *SG, order *SiblingOrder) ([]View, error) {
	byObj := make(map[tname.ObjID][]event.AccessOp)
	var objs []tname.ObjID
	for _, op := range sg.VisibleOps {
		if _, ok := byObj[op.Obj]; !ok {
			objs = append(objs, op.Obj)
		}
		byObj[op.Obj] = append(byObj[op.Obj], op)
	}
	var out []View
	for _, x := range objs {
		ops := order.SortOps(byObj[x])
		xi := make([]spec.OpVal, len(ops))
		for i, op := range ops {
			xi[i] = op.OV
		}
		if ok, i := spec.IsBehavior(tr.Spec(x), xi); !ok {
			return nil, fmt.Errorf("view(β,T0,R,%s): operation %d (%s by %s) is not legal in the reordered sequence",
				tr.ObjectLabel(x), i, xi[i], tr.Name(ops[i].Tx))
		}
		out = append(out, View{Obj: x, Ops: ops})
	}
	return out, nil
}

// FormatCertificate renders the sibling order for human inspection.
func FormatCertificate(tr *tname.Tree, c *Certificate) string {
	var sb strings.Builder
	sb.WriteString("suitable sibling order R (topological sorts of SG(β,T)):\n")
	parents := make([]tname.TxID, 0, len(c.Order.ByParent))
	for p := range c.Order.ByParent {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
	for _, p := range parents {
		fmt.Fprintf(&sb, "  %s: ", tr.Name(p))
		for i, k := range c.Order.ByParent[p] {
			if i > 0 {
				sb.WriteString(" < ")
			}
			sb.WriteString(tr.Label(k))
		}
		sb.WriteString("\n")
	}
	for _, v := range c.Views {
		fmt.Fprintf(&sb, "view at %s:", tr.ObjectLabel(v.Obj))
		for _, op := range v.Ops {
			fmt.Fprintf(&sb, " %s", op.OV)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
