package core

import (
	"strings"
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// fix mirrors the classical two-transaction scenario nested one level:
//
//	T0 ── t1 ── w1 (write x=5), and t2 ── r2 (read x)
type fix struct {
	tr             *tname.Tree
	x              tname.ObjID
	t1, t2, w1, r2 tname.TxID
}

func newFix(t *testing.T) *fix {
	t.Helper()
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	f := &fix{tr: tr, x: x}
	f.t1 = tr.Child(tname.Root, "t1")
	f.t2 = tr.Child(tname.Root, "t2")
	f.w1 = tr.Access(f.t1, "w1", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(5)})
	f.r2 = tr.Access(f.t2, "r2", x, spec.Op{Kind: spec.OpRead})
	return f
}

func ev(k event.Kind, tx tname.TxID) event.Event { return event.NewEvent(k, tx) }
func evv(k event.Kind, tx tname.TxID, v spec.Value) event.Event {
	return event.NewValEvent(k, tx, v)
}

// wellFormedRun produces a complete committed run where w1 happens before
// r2 and r2 reads readVal.
func (f *fix) wellFormedRun(readVal spec.Value) event.Behavior {
	return event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, f.t1),
		ev(event.RequestCreate, f.t2),
		ev(event.Create, f.t1),
		ev(event.Create, f.t2),
		ev(event.RequestCreate, f.w1),
		ev(event.Create, f.w1),
		evv(event.RequestCommit, f.w1, spec.OK),
		ev(event.Commit, f.w1),
		evv(event.ReportCommit, f.w1, spec.OK),
		evv(event.RequestCommit, f.t1, spec.Nil),
		ev(event.Commit, f.t1),
		ev(event.RequestCreate, f.r2),
		ev(event.Create, f.r2),
		evv(event.RequestCommit, f.r2, readVal),
		ev(event.Commit, f.r2),
		evv(event.ReportCommit, f.r2, readVal),
		evv(event.RequestCommit, f.t2, spec.Nil),
		ev(event.Commit, f.t2),
		evv(event.ReportCommit, f.t1, spec.Nil),
		evv(event.ReportCommit, f.t2, spec.Nil),
	}
}

func TestBuildConflictEdge(t *testing.T) {
	f := newFix(t)
	sg := Build(f.tr, f.wellFormedRun(spec.Int(5)))
	pg := sg.Parent(tname.Root)
	if pg == nil {
		t.Fatal("SG(β,T0) missing")
	}
	kind, ok := pg.HasEdge(f.t1, f.t2)
	if !ok || kind&EdgeConflict == 0 {
		t.Fatalf("expected conflict edge t1 -> t2, edges: %v", pg.Edges())
	}
	if _, ok := pg.HasEdge(f.t2, f.t1); ok {
		t.Error("no reverse edge expected")
	}
	if sg.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", sg.NumEdges())
	}
	if len(sg.VisibleOps) != 2 {
		t.Errorf("VisibleOps = %d", len(sg.VisibleOps))
	}
}

func TestBuildIgnoresInvisibleConflicts(t *testing.T) {
	f := newFix(t)
	b := f.wellFormedRun(spec.Int(5))
	// Remove COMMIT(t1) and its report: w1 becomes invisible to T0, so no
	// conflict edge (and r2's value is then inappropriate — but Build does
	// not care about values).
	var filtered event.Behavior
	for _, e := range b {
		if (e.Kind == event.Commit || e.Kind == event.ReportCommit) && e.Tx == f.t1 {
			continue
		}
		filtered = append(filtered, e)
	}
	sg := Build(f.tr, filtered)
	if sg.NumEdges() != 0 {
		t.Errorf("invisible access must not produce edges; got %d", sg.NumEdges())
	}
}

func TestBuildReadsDoNotConflict(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	t1 := tr.Child(tname.Root, "t1")
	t2 := tr.Child(tname.Root, "t2")
	r1 := tr.Access(t1, "r1", x, spec.Op{Kind: spec.OpRead})
	r2 := tr.Access(t2, "r2", x, spec.Op{Kind: spec.OpRead})
	b := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, t1), ev(event.RequestCreate, t2),
		ev(event.Create, t1), ev(event.Create, t2),
		ev(event.RequestCreate, r1), ev(event.Create, r1),
		evv(event.RequestCommit, r1, spec.Int(0)), ev(event.Commit, r1),
		ev(event.RequestCreate, r2), ev(event.Create, r2),
		evv(event.RequestCommit, r2, spec.Int(0)), ev(event.Commit, r2),
		evv(event.ReportCommit, r1, spec.Int(0)), evv(event.ReportCommit, r2, spec.Int(0)),
		evv(event.RequestCommit, t1, spec.Nil), ev(event.Commit, t1),
		evv(event.RequestCommit, t2, spec.Nil), ev(event.Commit, t2),
	}
	sg := Build(tr, b)
	if sg.NumEdges() != 0 {
		t.Errorf("read/read must not conflict; got %d edges", sg.NumEdges())
	}
}

func TestBuildPrecedesEdge(t *testing.T) {
	f := newFix(t)
	// t1 runs fully and is reported before T0 requests t2: external
	// consistency demands a precedes edge even without data conflicts.
	b := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, f.t1),
		ev(event.Create, f.t1),
		evv(event.RequestCommit, f.t1, spec.Nil),
		ev(event.Commit, f.t1),
		evv(event.ReportCommit, f.t1, spec.Nil),
		ev(event.RequestCreate, f.t2),
		ev(event.Create, f.t2),
		evv(event.RequestCommit, f.t2, spec.Nil),
		ev(event.Commit, f.t2),
		evv(event.ReportCommit, f.t2, spec.Nil),
	}
	sg := Build(f.tr, b)
	pg := sg.Parent(tname.Root)
	if pg == nil {
		t.Fatal("SG(β,T0) missing")
	}
	kind, ok := pg.HasEdge(f.t1, f.t2)
	if !ok || kind&EdgePrecedes == 0 {
		t.Fatal("expected precedes edge t1 -> t2")
	}
	// Report of an aborted sibling also precedes later requests.
	b2 := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, f.t1),
		ev(event.Abort, f.t1),
		ev(event.ReportAbort, f.t1),
		ev(event.RequestCreate, f.t2),
	}
	sg2 := Build(f.tr, b2)
	if pg2 := sg2.Parent(tname.Root); pg2 == nil {
		t.Fatal("SG missing for abort-then-request")
	} else if kind, ok := pg2.HasEdge(f.t1, f.t2); !ok || kind&EdgePrecedes == 0 {
		t.Error("expected precedes edge from aborted t1 to t2")
	}
}

func TestEdgeKindString(t *testing.T) {
	if EdgeConflict.String() != "conflict" || EdgePrecedes.String() != "precedes" {
		t.Error("edge kind names wrong")
	}
	if (EdgeConflict | EdgePrecedes).String() != "conflict+precedes" {
		t.Error("combined edge kind name wrong")
	}
	if EdgeKind(0).String() != "none" {
		t.Error("zero edge kind name wrong")
	}
}

func TestAcyclicityCertificate(t *testing.T) {
	f := newFix(t)
	sg := Build(f.tr, f.wellFormedRun(spec.Int(5)))
	order, cycle := sg.Acyclicity()
	if cycle != nil {
		t.Fatalf("unexpected cycle: %s", cycle.Format(f.tr))
	}
	if !order.CompareSiblings(f.t1, f.t2) {
		t.Error("R must order t1 before t2")
	}
	if order.Less(f.w1, f.r2) != true {
		t.Error("R_trans must order w1's ops before r2's")
	}
	r1, ok1 := order.Rank(f.t1)
	r2, ok2 := order.Rank(f.t2)
	if !ok1 || !ok2 || r1 >= r2 {
		t.Errorf("ranks: %d,%v %d,%v", r1, ok1, r2, ok2)
	}
}

func TestCompareSiblingsTotal(t *testing.T) {
	f := newFix(t)
	sg := Build(f.tr, f.wellFormedRun(spec.Int(5)))
	order, _ := sg.Acyclicity()
	t3 := f.tr.Child(tname.Root, "t3") // never appears in β: unranked
	t4 := f.tr.Child(tname.Root, "t4")
	if !order.CompareSiblings(f.t1, t3) {
		t.Error("ranked siblings order before unranked ones")
	}
	if order.CompareSiblings(t3, f.t1) {
		t.Error("unranked after ranked")
	}
	if !order.CompareSiblings(t3, t4) || order.CompareSiblings(t4, t3) {
		t.Error("unranked siblings ordered by name")
	}
	if order.CompareSiblings(t3, t3) {
		t.Error("irreflexive")
	}
}

func TestLessPanicsOnAncestry(t *testing.T) {
	f := newFix(t)
	sg := Build(f.tr, f.wellFormedRun(spec.Int(5)))
	order, _ := sg.Acyclicity()
	defer func() {
		if recover() == nil {
			t.Error("Less on ancestor/descendant must panic")
		}
	}()
	order.Less(f.t1, f.w1)
}

func TestCycleDetectionAndFormat(t *testing.T) {
	f := newFix(t)
	// Interleave conflicting accesses so that edges go both ways:
	// w1 (t1) ... r2 (t2) ... w1b (t1) — r2 after w1 gives t1→t2; a second
	// write by t1 after r2 gives t2→t1.
	w1b := f.tr.Access(f.t1, "w1b", f.x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(7)})
	b := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, f.t1), ev(event.RequestCreate, f.t2),
		ev(event.Create, f.t1), ev(event.Create, f.t2),
		ev(event.RequestCreate, f.w1), ev(event.Create, f.w1),
		evv(event.RequestCommit, f.w1, spec.OK), ev(event.Commit, f.w1),
		evv(event.ReportCommit, f.w1, spec.OK),
		ev(event.RequestCreate, f.r2), ev(event.Create, f.r2),
		evv(event.RequestCommit, f.r2, spec.Int(5)), ev(event.Commit, f.r2),
		evv(event.ReportCommit, f.r2, spec.Int(5)),
		ev(event.RequestCreate, w1b), ev(event.Create, w1b),
		evv(event.RequestCommit, w1b, spec.OK), ev(event.Commit, w1b),
		evv(event.ReportCommit, w1b, spec.OK),
		evv(event.RequestCommit, f.t1, spec.Nil), ev(event.Commit, f.t1),
		evv(event.RequestCommit, f.t2, spec.Nil), ev(event.Commit, f.t2),
	}
	sg := Build(f.tr, b)
	order, cycle := sg.Acyclicity()
	if order != nil || cycle == nil {
		t.Fatal("expected a cycle")
	}
	if cycle.Parent != tname.Root || len(cycle.Nodes) != 2 {
		t.Fatalf("cycle = %+v", cycle)
	}
	msg := cycle.Format(f.tr)
	if !strings.Contains(msg, "cycle in SG") || !strings.Contains(msg, "conflict") {
		t.Errorf("cycle message: %s", msg)
	}
}

func TestCheckAccepts(t *testing.T) {
	f := newFix(t)
	res := Check(f.tr, f.wellFormedRun(spec.Int(5)))
	if !res.OK {
		t.Fatalf("check failed: %s", res.Summary(f.tr))
	}
	if res.Certificate == nil || len(res.Certificate.Views) != 1 {
		t.Fatal("certificate missing or views wrong")
	}
	view := res.Certificate.Views[0]
	if len(view.Ops) != 2 || view.Ops[0].Tx != f.w1 || view.Ops[1].Tx != f.r2 {
		t.Errorf("view order wrong: %+v", view.Ops)
	}
	if !strings.Contains(res.Summary(f.tr), "serially correct") {
		t.Errorf("summary: %s", res.Summary(f.tr))
	}
	if s := FormatCertificate(f.tr, res.Certificate); !strings.Contains(s, "view at x") {
		t.Errorf("certificate rendering: %s", s)
	}
}

func TestCheckRejectsBadValue(t *testing.T) {
	f := newFix(t)
	res := Check(f.tr, f.wellFormedRun(spec.Int(99)))
	if res.OK || len(res.ValueViolations) == 0 {
		t.Fatalf("expected value violations, got %s", res.Summary(f.tr))
	}
	if !strings.Contains(res.Summary(f.tr), "inappropriate return values") {
		t.Errorf("summary: %s", res.Summary(f.tr))
	}
}

func TestCheckRejectsMalformed(t *testing.T) {
	f := newFix(t)
	b := event.Behavior{ev(event.Create, f.t1)} // create without request
	res := Check(f.tr, b)
	if res.OK || res.WFErr == nil {
		t.Fatal("expected a well-formedness failure")
	}
	if !strings.Contains(res.Summary(f.tr), "not a simple behavior") {
		t.Errorf("summary: %s", res.Summary(f.tr))
	}
}

func TestCheckIgnoresInformEvents(t *testing.T) {
	f := newFix(t)
	b := f.wellFormedRun(spec.Int(5))
	withInforms := make(event.Behavior, 0, len(b)+2)
	withInforms = append(withInforms, b[:9]...)
	withInforms = append(withInforms, event.NewInform(event.InformCommit, f.w1, f.x))
	withInforms = append(withInforms, b[9:]...)
	res := Check(f.tr, withInforms)
	if !res.OK {
		t.Fatalf("informs must be transparent: %s", res.Summary(f.tr))
	}
}

func TestAuditSuitabilityAccepts(t *testing.T) {
	f := newFix(t)
	b := f.wellFormedRun(spec.Int(5))
	res := Check(f.tr, b)
	if !res.OK {
		t.Fatal(res.Summary(f.tr))
	}
	if err := AuditSuitability(f.tr, b, res.Certificate.Order); err != nil {
		t.Fatal(err)
	}
}

func TestDOTRendering(t *testing.T) {
	f := newFix(t)
	sg := Build(f.tr, f.wellFormedRun(spec.Int(5)))
	dot := sg.DOT()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "t1") {
		t.Errorf("DOT output: %s", dot)
	}
}

// TestDeepNestingConflictPlacement: conflicting accesses deep in two
// different subtrees must induce an edge at the children of the LCA, not at
// T0 when the LCA is lower.
func TestDeepNestingConflictPlacement(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	p := tr.Child(tname.Root, "p")
	c1 := tr.Child(p, "c1")
	c2 := tr.Child(p, "c2")
	w := tr.Access(c1, "w", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(1)})
	r := tr.Access(c2, "r", x, spec.Op{Kind: spec.OpRead})
	b := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, p), ev(event.Create, p),
		ev(event.RequestCreate, c1), ev(event.RequestCreate, c2),
		ev(event.Create, c1), ev(event.Create, c2),
		ev(event.RequestCreate, w), ev(event.Create, w),
		evv(event.RequestCommit, w, spec.OK), ev(event.Commit, w),
		evv(event.ReportCommit, w, spec.OK),
		evv(event.RequestCommit, c1, spec.Nil), ev(event.Commit, c1),
		ev(event.RequestCreate, r), ev(event.Create, r),
		evv(event.RequestCommit, r, spec.Int(1)), ev(event.Commit, r),
		evv(event.ReportCommit, r, spec.Int(1)),
		evv(event.RequestCommit, c2, spec.Nil), ev(event.Commit, c2),
		evv(event.ReportCommit, c1, spec.Nil), evv(event.ReportCommit, c2, spec.Nil),
		evv(event.RequestCommit, p, spec.Nil), ev(event.Commit, p),
		evv(event.ReportCommit, p, spec.Nil),
	}
	sg := Build(tr, b)
	pg := sg.Parent(p)
	if pg == nil {
		t.Fatal("SG(β,p) missing")
	}
	if _, ok := pg.HasEdge(c1, c2); !ok {
		t.Error("conflict edge must appear between c1 and c2 under p")
	}
	if pgRoot := sg.Parent(tname.Root); pgRoot != nil {
		if _, ok := pgRoot.HasEdge(p, p); ok {
			t.Error("no self edge at T0")
		}
		for _, e := range pgRoot.Edges() {
			if e.From == e.To {
				t.Error("self edge recorded")
			}
		}
	}
	res := Check(tr, b)
	if !res.OK {
		t.Fatalf("check: %s", res.Summary(tr))
	}
}

func TestSummaryVariants(t *testing.T) {
	f := newFix(t)
	// OK summary covered elsewhere; cover malformed, value, view paths.
	res := Check(f.tr, event.Behavior{ev(event.Create, f.t1)})
	if s := res.Summary(f.tr); s == "" || res.WFErr == nil {
		t.Errorf("malformed summary: %q", s)
	}
	res = Check(f.tr, f.wellFormedRun(spec.Int(99)))
	if s := res.Summary(f.tr); s == "" || len(res.ValueViolations) == 0 {
		t.Errorf("value summary: %q", s)
	}
	empty := &Result{}
	if empty.Summary(f.tr) != "unknown failure" {
		t.Error("empty result summary")
	}
}

func TestHasEdgeUnknownNodes(t *testing.T) {
	f := newFix(t)
	sg := Build(f.tr, f.wellFormedRun(spec.Int(5)))
	pg := sg.Parent(tname.Root)
	stranger := f.tr.Child(tname.Root, "stranger")
	if _, ok := pg.HasEdge(stranger, f.t1); ok {
		t.Error("edge from unknown node")
	}
	if _, ok := pg.HasEdge(f.t1, stranger); ok {
		t.Error("edge to unknown node")
	}
}

func TestSortSiblings(t *testing.T) {
	f := newFix(t)
	sg := Build(f.tr, f.wellFormedRun(spec.Int(5)))
	order, _ := sg.Acyclicity()
	got := order.SortSiblings([]tname.TxID{f.t2, f.t1})
	if len(got) != 2 || got[0] != f.t1 || got[1] != f.t2 {
		t.Errorf("sorted = %v", got)
	}
	// Input must not be mutated.
	in := []tname.TxID{f.t2, f.t1}
	order.SortSiblings(in)
	if in[0] != f.t2 {
		t.Error("SortSiblings mutated its input")
	}
}

// TestParentsReturnsDefensiveCopy: the map returned by SG.Parents is a
// fresh copy on every call, so callers deleting or overwriting entries
// cannot corrupt the SG — a regression test for the former implementation
// that leaked the internal index.
func TestParentsReturnsDefensiveCopy(t *testing.T) {
	f := newFix(t)
	sg := Build(f.tr, f.wellFormedRun(spec.Int(5)))
	if sg.NumParents() == 0 {
		t.Fatal("expected at least one materialized parent graph")
	}
	before := sg.NumEdges()

	m := sg.Parents()
	for p := range m {
		delete(m, p)
	}
	m[tname.Root] = nil

	if sg.NumParents() == 0 || sg.NumEdges() != before {
		t.Fatalf("mutating Parents() corrupted the SG: %d parents, %d edges (want %d)",
			sg.NumParents(), sg.NumEdges(), before)
	}
	m2 := sg.Parents()
	if len(m2) != sg.NumParents() {
		t.Fatalf("second Parents() call returned %d entries, want %d", len(m2), sg.NumParents())
	}
	for p, pg := range m2 {
		if pg == nil || pg.Parent != p {
			t.Fatalf("second Parents() call returned corrupted entry for %v", p)
		}
	}
}
