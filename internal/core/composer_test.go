package core

import (
	"math/rand"
	"testing"

	"nestedsg/internal/event"
	"nestedsg/internal/tname"
)

// edgeRecord is one sink observation, kept in TxID space so it can be
// replayed into a Composer in any order.
type edgeRecord struct {
	parent, from, to tname.TxID
	kind             EdgeKind
}

// collectEdges streams b through an Incremental with a recording sink and
// returns the deduped edge records in discovery order.
func collectEdges(tr *tname.Tree, b event.Behavior) []edgeRecord {
	inc := NewIncremental(tr)
	var recs []edgeRecord
	inc.SetEdgeSink(func(parent, from, to tname.TxID, kind EdgeKind) {
		recs = append(recs, edgeRecord{parent, from, to, kind})
	})
	for _, e := range b {
		inc.Append(e)
	}
	return recs
}

// TestComposerMatchesBuild: replaying the sink's edge records into a
// Composer reconstructs SG(β) byte-for-byte, on protocol traces and on
// random event soup, cyclic traces included.
func TestComposerMatchesBuild(t *testing.T) {
	for _, proto := range []string{"moss", "broken"} {
		for seed := int64(0); seed < 30; seed++ {
			tr := tname.NewTree()
			b := protocolTrace(t, proto, seed, tr)
			verifyComposed(t, tr, b)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 40; i++ {
		tr, names := randomSystem(rng)
		b := randomEvents(rng, tr, names, 30+rng.Intn(40))
		verifyComposed(t, tr, b)
	}
}

func verifyComposed(t *testing.T, tr *tname.Tree, b event.Behavior) {
	t.Helper()
	recs := collectEdges(tr, b)
	want := Build(tr, b)

	comp := NewComposer(tr)
	for _, r := range recs {
		comp.AddEdge(r.parent, r.from, r.to, r.kind)
	}
	if got, w := comp.Snapshot().DOT(), want.DOT(); got != w {
		t.Fatalf("composed snapshot diverges from Build:\n--- composed ---\n%s\n--- build ---\n%s", got, w)
	}
	_, cyc := want.Acyclicity()
	if comp.Cyclic() != (cyc != nil) {
		t.Fatalf("composed verdict cyclic=%v, Build cyclic=%v", comp.Cyclic(), cyc != nil)
	}

	// Arrival order must not matter: replay the records reversed, with
	// every record delivered twice (a partition re-deriving an edge
	// another partition already shipped is the common case).
	comp2 := NewComposer(tr)
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		comp2.AddEdge(r.parent, r.from, r.to, r.kind)
		if comp2.AddEdge(r.parent, r.from, r.to, r.kind) {
			t.Fatalf("duplicate record reported as new: %+v", r)
		}
	}
	if got, w := comp2.Snapshot().DOT(), want.DOT(); got != w {
		t.Fatalf("reversed replay diverges from Build:\n%s\n%s", got, w)
	}
	if comp2.Cyclic() != (cyc != nil) {
		t.Fatalf("reversed replay verdict cyclic=%v, Build cyclic=%v", comp2.Cyclic(), cyc != nil)
	}
}

// TestComposerCounts: Counts must agree with the Incremental that fed it.
func TestComposerCounts(t *testing.T) {
	tr := tname.NewTree()
	b := protocolTrace(t, "moss", 3, tr)
	inc := NewIncremental(tr)
	comp := NewComposer(tr)
	inc.SetEdgeSink(func(parent, from, to tname.TxID, kind EdgeKind) {
		comp.AddEdge(parent, from, to, kind)
	})
	for _, e := range b {
		inc.Append(e)
	}
	ip, in, ie := inc.Counts()
	cp, cn, ce := comp.Counts()
	if ip != cp || in != cn || ie != ce {
		t.Fatalf("counts diverge: incremental (%d,%d,%d) composer (%d,%d,%d)", ip, in, ie, cp, cn, ce)
	}
}

// TestComposerReset: Reset rewinds to the empty graph and a second
// composition over the same tree reproduces the same bytes.
func TestComposerReset(t *testing.T) {
	tr := tname.NewTree()
	b := protocolTrace(t, "moss", 5, tr)
	recs := collectEdges(tr, b)
	comp := NewComposer(tr)
	feed := func() {
		for _, r := range recs {
			comp.AddEdge(r.parent, r.from, r.to, r.kind)
		}
	}
	feed()
	first := comp.Snapshot().DOT()
	comp.Reset()
	if p, n, e := comp.Counts(); p != 0 || n != 0 || e != 0 {
		t.Fatalf("reset left state behind: %d parents %d nodes %d edges", p, n, e)
	}
	feed()
	if got := comp.Snapshot().DOT(); got != first {
		t.Fatalf("post-reset composition diverges:\n%s\n%s", got, first)
	}
}

// TestEdgeSinkFiresOncePerRecord: the sink sees exactly the dedup map's
// support — len(seen) records, no duplicates.
func TestEdgeSinkFiresOncePerRecord(t *testing.T) {
	tr := tname.NewTree()
	b := protocolTrace(t, "moss", 7, tr)
	inc := NewIncremental(tr)
	seen := map[edgeRecord]int{}
	inc.SetEdgeSink(func(parent, from, to tname.TxID, kind EdgeKind) {
		seen[edgeRecord{parent, from, to, kind}]++
	})
	for _, e := range b {
		inc.Append(e)
	}
	_, _, edges := inc.Counts()
	if len(seen) != edges {
		t.Fatalf("sink saw %d distinct records, checker holds %d", len(seen), edges)
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("record %+v delivered %d times", r, n)
		}
	}
}
