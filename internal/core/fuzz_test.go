package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nestedsg/internal/event"
	"nestedsg/internal/simple"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// randomSystem interns a random tree over a couple of typed objects.
func randomSystem(rng *rand.Rand) (*tname.Tree, []tname.TxID) {
	tr := tname.NewTree()
	specs := spec.All()
	nObj := 1 + rng.Intn(3)
	objs := make([]tname.ObjID, nObj)
	for i := range objs {
		sp := specs[rng.Intn(len(specs))]
		objs[i] = tr.AddObject(sp.Name()+string(rune('a'+i)), sp)
	}
	names := []tname.TxID{tname.Root}
	for i := 0; i < 14; i++ {
		parent := names[rng.Intn(len(names))]
		if tr.IsAccess(parent) {
			continue
		}
		label := "n" + string(rune('a'+i))
		var id tname.TxID
		if rng.Intn(3) == 0 {
			x := objs[rng.Intn(len(objs))]
			id = tr.Access(parent, label, x, tr.Spec(x).RandOp(rng))
		} else {
			id = tr.Child(parent, label)
		}
		names = append(names, id)
	}
	return tr, names
}

// randomEvents emits arbitrary (usually ill-formed) event sequences.
func randomEvents(rng *rand.Rand, tr *tname.Tree, names []tname.TxID, n int) event.Behavior {
	kinds := []event.Kind{event.Create, event.RequestCreate, event.RequestCommit,
		event.Commit, event.Abort, event.ReportCommit, event.ReportAbort}
	b := make(event.Behavior, n)
	for i := range b {
		k := kinds[rng.Intn(len(kinds))]
		tx := names[rng.Intn(len(names))]
		var v spec.Value
		switch rng.Intn(4) {
		case 0:
			v = spec.OK
		case 1:
			v = spec.Int(int64(rng.Intn(8)))
		case 2:
			v = spec.Bool(rng.Intn(2) == 0)
		}
		b[i] = event.NewValEvent(k, tx, v)
	}
	return b
}

// TestCheckNeverPanicsOnGarbage: Check must classify arbitrary event
// soup as a well-formedness failure (or, rarely, pass it) — never panic.
func TestCheckNeverPanicsOnGarbage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, names := randomSystem(rng)
		b := randomEvents(rng, tr, names, 1+rng.Intn(60))
		res := Check(tr, b)
		// A garbage sequence that somehow passes must carry a certificate.
		if res.OK && res.Certificate == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildNeverPanicsOnGarbage: the graph construction itself is defined
// on arbitrary sequences of serial actions (the paper defines conflict and
// precedes for any such sequence), so Build must tolerate them.
func TestBuildNeverPanicsOnGarbage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, names := randomSystem(rng)
		b := randomEvents(rng, tr, names, 1+rng.Intn(60))
		sg := Build(tr, b)
		sg.Acyclicity()
		_ = sg.DOT()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestVisibilityHelpersNeverPanic exercises the simple-system derived
// notions on garbage.
func TestVisibilityHelpersNeverPanic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, names := randomSystem(rng)
		b := randomEvents(rng, tr, names, 1+rng.Intn(40))
		simple.VisibleTo(tr, b, tname.Root)
		simple.Clean(tr, b)
		for _, n := range names {
			vis := simple.NewVis(tr, b, n)
			for _, m := range names {
				vis.Visible(m)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGarbageValuesOnInvisibleAccessesAreIgnored: appropriate return
// values only constrain the committed projection; an uncommitted access
// may return anything without affecting the verdict.
func TestGarbageValuesOnInvisibleAccesses(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	t1 := tr.Child(tname.Root, "t1")
	t2 := tr.Child(tname.Root, "t2")
	r1 := tr.Access(t1, "r1", x, spec.Op{Kind: spec.OpRead})
	r2 := tr.Access(t2, "r2", x, spec.Op{Kind: spec.OpRead})
	ev := event.NewEvent
	evv := event.NewValEvent
	b := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, t1), ev(event.Create, t1),
		ev(event.RequestCreate, t2), ev(event.Create, t2),
		ev(event.RequestCreate, r1), ev(event.Create, r1),
		evv(event.RequestCommit, r1, spec.Int(424242)), // garbage, but t1 never commits
		ev(event.Commit, r1),
		ev(event.RequestCreate, r2), ev(event.Create, r2),
		evv(event.RequestCommit, r2, spec.Int(0)), ev(event.Commit, r2),
		evv(event.ReportCommit, r2, spec.Int(0)),
		evv(event.RequestCommit, t2, spec.Nil), ev(event.Commit, t2),
	}
	res := Check(tr, b)
	if !res.OK {
		t.Fatalf("invisible garbage must not fail the check: %s", res.Summary(tr))
	}
}
