// Package minimize shrinks behaviors that fail the serialization-graph
// check to smaller ones that still fail the same way — delta debugging for
// traces. Given a trace flagged with a cycle or a value violation, the
// minimizer greedily removes whole transaction subtrees (all events naming
// a descendant) while the failure class persists, until no single subtree
// can be removed. The result is typically a handful of transactions that
// exhibit the anomaly, small enough to read or to feed to the exhaustive
// oracle.
package minimize

import (
	"sort"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/tname"
)

// FailureClass is what kind of rejection the minimizer preserves.
type FailureClass uint8

// Failure classes.
const (
	// NotFailing: the input passes the checker; there is nothing to
	// minimize.
	NotFailing FailureClass = iota
	// Malformed: rejected by the well-formedness axioms.
	Malformed
	// BadValues: rejected by the appropriate-return-values audit.
	BadValues
	// Cyclic: rejected by a serialization-graph cycle.
	Cyclic
)

// String names the class.
func (c FailureClass) String() string {
	switch c {
	case NotFailing:
		return "not-failing"
	case Malformed:
		return "malformed"
	case BadValues:
		return "bad-values"
	case Cyclic:
		return "cyclic"
	}
	return "unknown"
}

// Classify runs the checker and reports the failure class.
func Classify(tr *tname.Tree, b event.Behavior) FailureClass {
	res := core.Check(tr, b)
	switch {
	case res.OK:
		return NotFailing
	case res.WFErr != nil:
		return Malformed
	case len(res.ValueViolations) > 0:
		return BadValues
	case res.Cycle != nil:
		return Cyclic
	}
	return Malformed
}

// Stats reports what the minimizer did.
type Stats struct {
	// Class is the preserved failure class.
	Class FailureClass
	// EventsBefore/EventsAfter are trace sizes.
	EventsBefore, EventsAfter int
	// Removed counts removed subtrees; Attempts counts checker runs.
	Removed, Attempts int
}

// Minimize returns a 1-minimal (no single remaining candidate subtree can
// be removed) sub-behavior failing with the same class, together with
// statistics. Behaviors that pass the checker are returned unchanged with
// Class NotFailing.
func Minimize(tr *tname.Tree, b event.Behavior) (event.Behavior, Stats) {
	st := Stats{EventsBefore: len(b)}
	st.Class = Classify(tr, b)
	st.Attempts++
	if st.Class == NotFailing {
		st.EventsAfter = len(b)
		return b, st
	}

	cur := b
	for {
		removedAny := false
		for _, sub := range candidates(tr, cur) {
			trial := removeSubtree(tr, cur, sub)
			if len(trial) == len(cur) {
				continue
			}
			st.Attempts++
			if Classify(tr, trial) == st.Class {
				cur = trial
				st.Removed++
				removedAny = true
			}
		}
		if !removedAny {
			break
		}
	}
	st.EventsAfter = len(cur)
	return cur, st
}

// candidates lists the transaction subtrees appearing in the behavior,
// largest first (removing big subtrees early shrinks fastest): first the
// children of T0, then deeper non-access transactions, then accesses.
func candidates(tr *tname.Tree, b event.Behavior) []tname.TxID {
	seen := map[tname.TxID]bool{}
	var out []tname.TxID
	for _, e := range b {
		if e.Tx == tname.Root || seen[e.Tx] {
			continue
		}
		seen[e.Tx] = true
		out = append(out, e.Tx)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := tr.Depth(out[i]), tr.Depth(out[j])
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	return out
}

// removeSubtree drops every event that names a descendant of sub
// (including informs about them).
func removeSubtree(tr *tname.Tree, b event.Behavior, sub tname.TxID) event.Behavior {
	out := make(event.Behavior, 0, len(b))
	for _, e := range b {
		if tr.IsDescendant(e.Tx, sub) {
			continue
		}
		out = append(out, e)
	}
	if len(out) == len(b) {
		return b
	}
	return out
}
