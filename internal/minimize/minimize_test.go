package minimize

import (
	"testing"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

// failingTrace produces a trace the checker rejects (broken protocol on a
// hot object; scanning seeds guarantees one).
func failingTrace(t *testing.T) (*tname.Tree, event.Behavior, FailureClass) {
	t.Helper()
	for seed := int64(0); seed < 30; seed++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 8, Depth: 1,
			Fanout: 3, Objects: 1, HotProb: 1, ParProb: 0.9, ReadRatio: 0.5})
		b, _, err := generic.Run(tr, root, generic.Options{Seed: seed * 11,
			Protocol: undolog.BrokenProtocol{Mode: undolog.SkipCommute}})
		if err != nil {
			t.Fatal(err)
		}
		if c := Classify(tr, b); c != NotFailing {
			return tr, b, c
		}
	}
	t.Fatal("no failing trace found in 30 seeds")
	return nil, nil, NotFailing
}

func TestMinimizeShrinksAndPreservesClass(t *testing.T) {
	tr, b, class := failingTrace(t)
	small, st := Minimize(tr, b)
	if st.Class != class {
		t.Fatalf("class drifted: %s vs %s", st.Class, class)
	}
	if Classify(tr, small) != class {
		t.Fatalf("minimized trace no longer fails with %s", class)
	}
	if len(small) >= len(b) {
		t.Fatalf("no shrinkage: %d -> %d events", len(b), len(small))
	}
	if st.EventsBefore != len(b) || st.EventsAfter != len(small) {
		t.Errorf("stats sizes wrong: %+v", st)
	}
	t.Logf("minimized %d -> %d events (%d subtrees removed, %d checker runs)",
		len(b), len(small), st.Removed, st.Attempts)
}

func TestMinimizeIsOneMinimalOverTopLevels(t *testing.T) {
	tr, b, class := failingTrace(t)
	small, _ := Minimize(tr, b)
	// Removing any remaining top-level subtree must change the verdict.
	seen := map[tname.TxID]bool{}
	for _, e := range small {
		if e.Tx == tname.Root {
			continue
		}
		top := tr.ChildAncestor(tname.Root, e.Tx)
		if seen[top] {
			continue
		}
		seen[top] = true
		trial := removeSubtree(tr, small, top)
		if Classify(tr, trial) == class {
			t.Fatalf("removing %s still fails with %s — not 1-minimal", tr.Name(top), class)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("a %s anomaly needs at least two transactions, got %d", class, len(seen))
	}
}

func TestMinimizePassingTraceIsIdentity(t *testing.T) {
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 1, TopLevel: 4, Depth: 1, Fanout: 3, Objects: 2})
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 2, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	small, st := Minimize(tr, b)
	if st.Class != NotFailing || !small.Equal(b) {
		t.Fatalf("passing trace must be returned unchanged (%s)", st.Class)
	}
}

func TestMinimizePreservesWellFormedness(t *testing.T) {
	tr, b, _ := failingTrace(t)
	small, st := Minimize(tr, b)
	// The input was well-formed (it came from the runner), so subtree
	// removal must keep it well-formed: the failure class cannot decay to
	// Malformed.
	if st.Class == Malformed {
		t.Skip("input already malformed")
	}
	if res := core.Check(tr, small); res.WFErr != nil {
		t.Fatalf("minimization broke well-formedness: %v", res.WFErr)
	}
}

func TestClassifyClasses(t *testing.T) {
	tr := tname.NewTree()
	// Malformed: CREATE without request.
	t1 := tr.Child(tname.Root, "t1")
	bad := event.Behavior{event.NewEvent(event.Create, t1)}
	if c := Classify(tr, bad); c != Malformed {
		t.Errorf("class = %s, want malformed", c)
	}
	if NotFailing.String() != "not-failing" || Cyclic.String() != "cyclic" ||
		BadValues.String() != "bad-values" || Malformed.String() != "malformed" {
		t.Error("class names wrong")
	}
}
