// Package object defines the generic object automaton interface of §5.1:
// the contract between the generic controller and the per-object
// concurrency-control/recovery automata (Moss locking, undo logging, and
// the deliberately broken variants used as negative controls).
//
// A generic object for X has CREATE(T) and the INFORM inputs, and decides
// when a REQUEST_COMMIT(T, v) output is enabled and what v is. The runner
// in internal/generic drives implementations through this interface.
package object

import (
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Generic is one generic object automaton G_X. Implementations are not
// required to be safe for concurrent use: the generic controller serializes
// all calls (the paper's automata take atomic steps).
type Generic interface {
	// Create handles the CREATE(T) input for an access T to this object.
	Create(t tname.TxID)

	// InformCommit handles INFORM_COMMIT_AT(X)OF(T). The controller
	// delivers informs for each object in completion order, so commit
	// informs arrive leaf-to-root (ascending), matching the lock-visibility
	// premises of §5.3.
	InformCommit(t tname.TxID)

	// InformAbort handles INFORM_ABORT_AT(X)OF(T).
	InformAbort(t tname.TxID)

	// TryRequestCommit attempts the REQUEST_COMMIT(T, v) output for a
	// created, unresponded access T. If the action is enabled it is
	// performed and (v, true) is returned; otherwise the state is unchanged
	// and ok is false.
	TryRequestCommit(t tname.TxID) (v spec.Value, ok bool)

	// Blockers returns the transactions whose activity currently disables
	// REQUEST_COMMIT for access t (lock holders that are not ancestors of
	// t, or uncommitted non-commuting operations). The runner uses this for
	// deadlock victim selection; it must not change state.
	Blockers(t tname.TxID) []tname.TxID
}

// BlockChecker is optionally implemented by generic objects that can
// answer "is access t currently blocked?" without materializing the
// blocker list. Blocked(t) must be equivalent to len(Blockers(t)) > 0 —
// the runner polls it on every scheduler step and only falls back to
// Blockers when choosing deadlock victims, where the full list is needed.
// Blocked must not change state.
type BlockChecker interface {
	Blocked(t tname.TxID) bool
}

// Aborter is optionally implemented by generic objects whose protocol
// aborts transactions instead of (only) blocking them — e.g. multiversion
// timestamp ordering, where a write that arrives "too late" can never be
// granted. When ShouldAbort reports true for a pending access, the runner
// aborts the access's top-level transaction (the classical restart).
// ShouldAbort must not change state.
type Aborter interface {
	ShouldAbort(t tname.TxID) bool
}

// Auditor is optionally implemented by generic objects that can check
// their own invariants (e.g. the lock-chain invariant of Lemma 9). The
// runner calls Audit after every step when invariant auditing is enabled.
type Auditor interface {
	Audit() error
}

// Protocol constructs the generic object automaton for each object of a
// system — one concurrency-control/recovery algorithm.
type Protocol interface {
	// Name identifies the protocol ("moss", "undolog", ...).
	Name() string
	// New builds the generic object for x.
	New(tr *tname.Tree, x tname.ObjID) Generic
}
