// Package client is the Go client for a nestedsgd server: a thin cursor
// over the session state the server keeps, plus a retry loop for the
// server-side aborts (deadlock victims, lock timeouts, drains) that any
// concurrent locking protocol must be allowed to issue.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"nestedsg/internal/spec"
	"nestedsg/internal/wire"
)

// ErrTxAborted is wrapped by every error caused by the server aborting the
// session's top-level transaction. After it, the session is idle again and
// the transaction can simply be retried; RunTx does so automatically.
var ErrTxAborted = errors.New("transaction aborted by server")

// Conn is one connection — hence one server-side session. A Conn is not
// safe for concurrent use; the protocol is strictly request/response.
type Conn struct {
	nc   net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	rbuf []byte
	out  []byte
	// broken marks a transport failure: the server-side session is gone,
	// so the connection must not be pooled or reused.
	broken bool
}

// Dial connects to a nestedsgd server.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// NewConn wraps an established connection (e.g. one end of net.Pipe served
// by Server.ServeConn) as a client session.
func NewConn(nc net.Conn) *Conn {
	return &Conn{nc: nc, r: bufio.NewReader(nc), w: bufio.NewWriter(nc)}
}

// Broken reports that the connection has seen a transport error and is
// dead.
func (c *Conn) Broken() bool { return c.broken }

// Close closes the connection. A transaction left open is aborted by the
// server.
func (c *Conn) Close() error { return c.nc.Close() }

func (c *Conn) roundTrip(q wire.Request) (wire.Response, error) {
	c.out = wire.AppendRequest(c.out[:0], q)
	if err := wire.WriteFrame(c.w, c.out); err != nil {
		c.broken = true
		return wire.Response{}, fmt.Errorf("client: write %s: %w", q.Cmd, err)
	}
	payload, err := wire.ReadFrame(c.r, c.rbuf)
	if err != nil {
		c.broken = true
		return wire.Response{}, fmt.Errorf("client: read %s response: %w", q.Cmd, err)
	}
	c.rbuf = payload
	resp, err := wire.ParseResponse(q.Cmd, payload)
	if err != nil {
		return wire.Response{}, err
	}
	switch resp.Status {
	case wire.StatusOK:
		return resp, nil
	case wire.StatusTxAborted:
		return resp, fmt.Errorf("%w: %s", ErrTxAborted, resp.Reason)
	case wire.StatusError:
		return resp, fmt.Errorf("client: server rejected %s: %s", q.Cmd, resp.Reason)
	default:
		return resp, fmt.Errorf("client: unknown response status %d", uint8(resp.Status))
	}
}

// Begin opens a top-level transaction and returns its label.
func (c *Conn) Begin() (string, error) {
	resp, err := c.roundTrip(wire.Request{Cmd: wire.CmdBegin})
	return resp.Name, err
}

// BeginRO opens a read-only top-level transaction. On a backend with a
// snapshot store (mvto) the transaction reads a consistent certified
// snapshot without taking locks and can never be aborted by the server; on
// other backends the server degrades it to an ordinary transaction, so
// callers must still be prepared for ErrTxAborted (RunReadTx is).
func (c *Conn) BeginRO() (string, error) {
	resp, err := c.roundTrip(wire.Request{Cmd: wire.CmdBegin, RO: true})
	return resp.Name, err
}

// Child opens a subtransaction of the current transaction.
func (c *Conn) Child() (string, error) {
	resp, err := c.roundTrip(wire.Request{Cmd: wire.CmdChild})
	return resp.Name, err
}

// Access performs one access (a leaf child of the current transaction) and
// returns its committed value. An ErrTxAborted-wrapped error means the
// server aborted the whole top-level transaction while the access waited.
func (c *Conn) Access(obj string, op spec.OpKind, arg spec.Value) (spec.Value, error) {
	resp, err := c.roundTrip(wire.Request{Cmd: wire.CmdAccess, Obj: obj, Op: op, Arg: arg})
	return resp.Value, err
}

// Commit commits the current transaction and returns the log index of its
// COMMIT event. A nil error certifies that the server's SG(β) was acyclic
// on a prefix covering the commit.
func (c *Conn) Commit() (uint64, error) {
	resp, err := c.roundTrip(wire.Request{Cmd: wire.CmdCommit})
	return resp.Seq, err
}

// Abort aborts the current transaction.
func (c *Conn) Abort() error {
	_, err := c.roundTrip(wire.Request{Cmd: wire.CmdAbort})
	return err
}

// Verdict reports the server's live certification state.
func (c *Conn) Verdict() (wire.Verdict, error) {
	resp, err := c.roundTrip(wire.Request{Cmd: wire.CmdVerdict})
	return resp.Verdict, err
}

// Ping round-trips a no-op frame.
func (c *Conn) Ping() error {
	_, err := c.roundTrip(wire.Request{Cmd: wire.CmdPing})
	return err
}

// Tx is the in-transaction view passed to a RunTx body: the same cursor,
// minus Begin/Commit (the retry loop owns those). It tracks the nesting
// depth so the retry loop can unwind subtransactions the body left open.
type Tx struct {
	c     *Conn
	depth int
}

// Child opens a subtransaction.
func (t *Tx) Child() (string, error) {
	name, err := t.c.Child()
	if err == nil {
		t.depth++
	}
	return name, err
}

// Access performs one access in the current transaction.
func (t *Tx) Access(obj string, op spec.OpKind, arg spec.Value) (spec.Value, error) {
	return t.c.Access(obj, op, arg)
}

// Commit commits the current subtransaction (not the top level).
func (t *Tx) Commit() (uint64, error) {
	seq, err := t.c.Commit()
	if err == nil && t.depth > 0 {
		t.depth--
	}
	return seq, err
}

// Abort aborts the current subtransaction.
func (t *Tx) Abort() error {
	err := t.c.Abort()
	if err == nil && t.depth > 0 {
		t.depth--
	}
	return err
}

// RunTx runs fn inside a top-level transaction, committing on nil return.
// When the server aborts the transaction (deadlock victim, lock timeout),
// RunTx backs off exponentially — 1ms doubling to 64ms — and retries, up to
// maxAttempts. Any other error from fn aborts the transaction and is
// returned as-is.
func (c *Conn) RunTx(maxAttempts int, fn func(tx *Tx) error) error {
	return c.runTx(maxAttempts, (*Conn).Begin, fn)
}

// RunReadTx is RunTx for read-only transactions: it opens the top level
// with BeginRO, so on a snapshot-capable backend the body runs lock-free
// against a consistent certified snapshot. The retry loop is kept because
// backends without snapshots serve the transaction normally and may abort
// it like any other.
func (c *Conn) RunReadTx(maxAttempts int, fn func(tx *Tx) error) error {
	return c.runTx(maxAttempts, (*Conn).BeginRO, fn)
}

func (c *Conn) runTx(maxAttempts int, begin func(*Conn) (string, error), fn func(tx *Tx) error) error {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	backoff := time.Millisecond
	var last error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > 64*time.Millisecond {
				backoff = 64 * time.Millisecond
			}
		}
		if _, err := begin(c); err != nil {
			return err
		}
		tx := &Tx{c: c}
		err := fn(tx)
		if err == nil && tx.depth > 0 {
			err = fmt.Errorf("client: transaction body left %d subtransaction(s) open", tx.depth)
		}
		if err == nil {
			_, err = c.Commit()
			if err == nil {
				return nil
			}
			if errors.Is(err, ErrTxAborted) {
				last = err
				continue
			}
			// COMMIT always leaves the session idle (committed, aborted, or
			// rejected after the fact by the certifier) — nothing to clean up.
			return err
		}
		if errors.Is(err, ErrTxAborted) {
			// Session is already idle server-side; just retry.
			last = err
			continue
		}
		// Application error: unwind any subtransactions the body left open,
		// then the top level, and bail.
		for i := 0; i <= tx.depth; i++ {
			if aerr := c.Abort(); aerr != nil {
				if !errors.Is(aerr, ErrTxAborted) {
					return errors.Join(err, aerr)
				}
				break
			}
		}
		return err
	}
	return fmt.Errorf("client: transaction failed after %d attempts: %w", maxAttempts, last)
}

// Pool is a trivial free-list of connections to one server, for callers
// that multiplex many logical sessions over a bounded set of workers.
type Pool struct {
	addr string
	mu   sync.Mutex
	free []*Conn //sgvet:guardedby mu
}

// NewPool returns a pool dialing addr on demand.
func NewPool(addr string) *Pool { return &Pool{addr: addr} }

// Get returns a pooled connection or dials a fresh one. A pooled
// connection is health-checked with a Ping first, so a connection the
// server dropped while it sat in the free list (restart, drain, frame
// error) is discarded instead of handed out.
func (p *Pool) Get() (*Conn, error) {
	for {
		p.mu.Lock()
		n := len(p.free)
		if n == 0 {
			p.mu.Unlock()
			return Dial(p.addr)
		}
		c := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		if err := c.Ping(); err == nil {
			return c, nil
		}
		c.Close()
	}
}

// Put returns a connection to the pool. Only idle connections (no open
// transaction) may be returned; a broken connection is closed instead of
// pooled.
func (p *Pool) Put(c *Conn) {
	if c.broken {
		c.Close()
		return
	}
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}

// Close closes every pooled connection.
func (p *Pool) Close() {
	p.mu.Lock()
	free := p.free
	p.free = nil
	p.mu.Unlock()
	for _, c := range free {
		c.Close()
	}
}
