package client_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"nestedsg/internal/client"
	"nestedsg/internal/server"
	"nestedsg/internal/spec"
)

func startServer(t *testing.T, opts server.Options) *server.Server {
	t.Helper()
	s, err := server.Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return s
}

// TestRunTxRetryExhaustion: when every attempt is aborted by the server,
// RunTx must give up after maxAttempts and return an error that both
// names the attempt count and wraps ErrTxAborted (the last cause), so
// callers can distinguish retry exhaustion from application errors.
func TestRunTxRetryExhaustion(t *testing.T) {
	s := startServer(t, server.Options{
		Objects:     []string{"x"},
		LockTimeout: 30 * time.Millisecond,
	})

	// Holder parks a write lock on x and never completes.
	holder, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if _, err := holder.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := holder.Access("x", spec.OpWrite, spec.Int(1)); err != nil {
		t.Fatal(err)
	}

	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	attempts := 0
	err = c.RunTx(2, func(tx *client.Tx) error {
		attempts++
		_, err := tx.Access("x", spec.OpWrite, spec.Int(2))
		return err
	})
	if err == nil {
		t.Fatal("RunTx succeeded against a held write lock")
	}
	if !errors.Is(err, client.ErrTxAborted) {
		t.Fatalf("exhaustion error does not wrap ErrTxAborted: %v", err)
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Fatalf("exhaustion error does not name the attempt count: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("body ran %d times, want 2", attempts)
	}
	// The lock-timeout reason from the server's last abort survives.
	if !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("last abort cause lost: %v", err)
	}
}

// TestPoolDiscardsDeadConnections: a connection that sat in the free list
// while its server went away must not be handed out again — Get
// health-checks it, discards it, and dials the replacement server.
func TestPoolDiscardsDeadConnections(t *testing.T) {
	s1, err := server.Listen("127.0.0.1:0", server.Options{Objects: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	addr := s1.Addr().String()

	pool := client.NewPool(addr)
	defer pool.Close()
	c, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	pool.Put(c)

	// The server goes down (closing the pooled connection) and a
	// replacement comes up on the same address.
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2 := server.New(server.Options{Objects: []string{"x"}})
	if err := s2.Start(addr); err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	t.Cleanup(func() { s2.Shutdown(context.Background()) })

	c2, err := pool.Get()
	if err != nil {
		t.Fatalf("Get after server drop: %v", err)
	}
	defer pool.Put(c2)
	if c2 == c {
		t.Fatal("pool handed back the connection the dead server closed")
	}
	if err := c2.RunTx(3, func(tx *client.Tx) error {
		_, err := tx.Access("x", spec.OpWrite, spec.Int(7))
		return err
	}); err != nil {
		t.Fatalf("transaction on replacement connection: %v", err)
	}
}

// TestPoolDropsBrokenConnOnPut: a connection that saw a transport error
// is closed by Put instead of rejoining the free list.
func TestPoolDropsBrokenConnOnPut(t *testing.T) {
	s := startServer(t, server.Options{Objects: []string{"x"}})
	pool := client.NewPool(s.Addr().String())
	defer pool.Close()

	c, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	// Break the transport under the client: the next round trip fails and
	// marks the connection.
	c.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("ping on a closed connection succeeded")
	}
	if !c.Broken() {
		t.Fatal("transport error did not mark the connection broken")
	}
	pool.Put(c)
	c2, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Put(c2)
	if c2 == c {
		t.Fatal("pool handed out a broken connection")
	}
}
