package wire

import (
	"encoding/binary"
	"fmt"

	"nestedsg/internal/event"
)

// Edge exchange is the message layer of the partitioned certifier
// (internal/part): each certifier partition periodically flushes the SG
// edges it has derived, together with the event bound its local stream has
// reached, and the composer unions the batches into the global graph. In
// this repository the partitions compose in-process, but the batch still
// crosses the codec on every flush — the encoded form IS the exchange, so
// a future multi-process split changes the transport, not the protocol.
//
// An EdgeBatch payload is:
//
//	version   uint8    (EdgeBatchVersion; unknown versions are rejected)
//	part      uvarint  (sending partition index)
//	upTo      uvarint  (events < upTo of the merged log are applied)
//	count     uvarint  (number of edge records)
//	records   count × { parent uvarint, from uvarint, to uvarint, kind uint8 }
//
// Transaction names travel as their interned tname IDs: both ends of the
// exchange replay the same total-order log, so their trees agree — the
// same argument that lets the WAL and the trace encode IDs.

// EdgeBatchVersion is the current edge-exchange protocol version.
const EdgeBatchVersion = 1

// MaxEdgeBatch caps the records accepted in one batch, bounding what a
// corrupt or hostile length prefix can make the decoder allocate.
const MaxEdgeBatch = 1 << 20

// SGEdge is one serialization-graph edge record in interned-ID space.
// Kind mirrors core.EdgeKind; the codec stays below core in the import
// order, so the mapping is by value, not by type.
type SGEdge struct {
	Parent, From, To uint32
	Kind             uint8
}

// EdgeBatch is one partition's flush: every edge record it derived since
// the previous flush, plus the exclusive event bound the partition's local
// stream has consumed. The soundness invariant of the exchange is that a
// batch's edges are delivered before (atomically with) its bound — the
// composer may only advance its watermark over events whose edges it
// already holds.
type EdgeBatch struct {
	Part  int
	UpTo  int
	Edges []SGEdge
}

// AppendEdgeBatch appends b's encoding to buf and returns the result.
func AppendEdgeBatch(buf []byte, b EdgeBatch) []byte {
	buf = append(buf, EdgeBatchVersion)
	buf = binary.AppendUvarint(buf, uint64(b.Part))
	buf = binary.AppendUvarint(buf, uint64(b.UpTo))
	buf = binary.AppendUvarint(buf, uint64(len(b.Edges)))
	for _, e := range b.Edges {
		buf = binary.AppendUvarint(buf, uint64(e.Parent))
		buf = binary.AppendUvarint(buf, uint64(e.From))
		buf = binary.AppendUvarint(buf, uint64(e.To))
		buf = append(buf, e.Kind)
	}
	return buf
}

// ParseEdgeBatch decodes one EdgeBatch payload. The records are appended
// into into.Edges[:0], so a caller that parses batches in a loop reuses
// one backing array; the other fields of into are ignored.
func ParseEdgeBatch(payload []byte, into EdgeBatch) (EdgeBatch, error) {
	b := EdgeBatch{Edges: into.Edges[:0]}
	if len(payload) == 0 {
		return b, fmt.Errorf("wire: empty edge batch")
	}
	if v := payload[0]; v != EdgeBatchVersion {
		return b, fmt.Errorf("wire: edge batch version %d, want %d", v, EdgeBatchVersion)
	}
	rest := payload[1:]
	part, rest, err := event.CutUvarint(rest, "edge batch partition")
	if err != nil {
		return b, err
	}
	upTo, rest, err := event.CutUvarint(rest, "edge batch bound")
	if err != nil {
		return b, err
	}
	count, rest, err := event.CutUvarint(rest, "edge batch count")
	if err != nil {
		return b, err
	}
	if count > MaxEdgeBatch {
		return b, fmt.Errorf("wire: edge batch of %d records exceeds cap %d", count, MaxEdgeBatch)
	}
	b.Part = int(part)
	b.UpTo = int(upTo)
	for i := uint64(0); i < count; i++ {
		var e SGEdge
		var p, f, t uint64
		if p, rest, err = event.CutUvarint(rest, "edge parent"); err != nil {
			return b, err
		}
		if f, rest, err = event.CutUvarint(rest, "edge from"); err != nil {
			return b, err
		}
		if t, rest, err = event.CutUvarint(rest, "edge to"); err != nil {
			return b, err
		}
		if len(rest) == 0 {
			return b, fmt.Errorf("wire: edge batch truncated before kind")
		}
		e.Parent, e.From, e.To, e.Kind = uint32(p), uint32(f), uint32(t), rest[0]
		rest = rest[1:]
		b.Edges = append(b.Edges, e)
	}
	if len(rest) != 0 {
		return b, fmt.Errorf("wire: %d trailing bytes after edge batch", len(rest))
	}
	return b, nil
}
