package wire

import (
	"reflect"
	"testing"
)

func sampleBatch() EdgeBatch {
	return EdgeBatch{
		Part: 3,
		UpTo: 1234,
		Edges: []SGEdge{
			{Parent: 0, From: 1, To: 2, Kind: 0},
			{Parent: 7, From: 300, To: 70000, Kind: 1},
			{Parent: 7, From: 70000, To: 300, Kind: 0},
		},
	}
}

func TestEdgeBatchRoundTrip(t *testing.T) {
	want := sampleBatch()
	buf := AppendEdgeBatch(nil, want)
	got, err := ParseEdgeBatch(buf, EdgeBatch{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Part != want.Part || got.UpTo != want.UpTo || !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}

	// Empty batches (a pure bound advance) round-trip too.
	empty := EdgeBatch{Part: 1, UpTo: 9}
	got, err = ParseEdgeBatch(AppendEdgeBatch(nil, empty), EdgeBatch{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Part != 1 || got.UpTo != 9 || len(got.Edges) != 0 {
		t.Fatalf("empty batch diverged: %+v", got)
	}
}

// TestEdgeBatchReuse: parsing into a recycled batch reuses its backing
// array — the live exchange parses one batch per flush with zero
// steady-state allocations.
func TestEdgeBatchReuse(t *testing.T) {
	buf := AppendEdgeBatch(nil, sampleBatch())
	scratch := EdgeBatch{Edges: make([]SGEdge, 0, 16)}
	got, err := ParseEdgeBatch(buf, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &got.Edges[0] != &scratch.Edges[:1][0] {
		t.Fatal("parse did not reuse the scratch backing array")
	}
}

func TestEdgeBatchRejects(t *testing.T) {
	valid := AppendEdgeBatch(nil, sampleBatch())
	cases := map[string][]byte{
		"empty":            {},
		"unknown version":  append([]byte{99}, valid[1:]...),
		"trailing bytes":   append(append([]byte{}, valid...), 0),
		"truncated header": valid[:2],
		"truncated record": valid[:len(valid)-1],
	}
	for name, payload := range cases {
		if _, err := ParseEdgeBatch(payload, EdgeBatch{}); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// A hostile count must be rejected before any allocation is sized
	// from it.
	hostile := []byte{EdgeBatchVersion}
	hostile = append(hostile, 0, 0)                      // part, upTo
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff, 7) // count ≫ MaxEdgeBatch
	if _, err := ParseEdgeBatch(hostile, EdgeBatch{}); err == nil {
		t.Error("hostile count decoded without error")
	}
}

// FuzzParseEdgeBatch: arbitrary payloads must be decoded or rejected,
// never panic, and every accepted payload must re-encode to the identical
// bytes (the encoding is canonical... modulo uvarint minimality, so assert
// a parse-append-parse fixed point instead).
func FuzzParseEdgeBatch(f *testing.F) {
	f.Add(AppendEdgeBatch(nil, sampleBatch()))
	f.Add([]byte{EdgeBatchVersion, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ParseEdgeBatch(data, EdgeBatch{})
		if err != nil {
			return
		}
		again, err := ParseEdgeBatch(AppendEdgeBatch(nil, b), EdgeBatch{})
		if err != nil {
			t.Fatalf("re-encoded batch rejected: %v", err)
		}
		if again.Part != b.Part || again.UpTo != b.UpTo || !reflect.DeepEqual(again.Edges, b.Edges) {
			t.Fatalf("parse/append not a fixed point: %+v vs %+v", again, b)
		}
	})
}
