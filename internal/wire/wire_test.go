package wire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"nestedsg/internal/spec"
)

func frameRoundTrip(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteFrame(w, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bufio.NewReader(&buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{{}, {1}, bytes.Repeat([]byte("x"), 4096)} {
		got := frameRoundTrip(t, payload)
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame round trip: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(bufio.NewWriter(&buf), make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted on write")
	}
	// A forged oversized length prefix must be rejected before allocation.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := ReadFrame(bufio.NewReader(&buf), nil); err == nil {
		t.Fatal("oversized length prefix accepted on read")
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteFrame(w, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(short)), nil); err == nil {
		t.Fatal("truncated frame body accepted")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Cmd: CmdBegin, Arg: spec.Nil},
		{Cmd: CmdChild, Arg: spec.Nil},
		{Cmd: CmdAccess, Obj: "x", Op: spec.OpWrite, Arg: spec.Int(42)},
		{Cmd: CmdAccess, Obj: "long object name", Op: spec.OpRead, Arg: spec.Nil},
		{Cmd: CmdAccess, Obj: "q", Op: spec.OpEnq, Arg: spec.Str("payload")},
		{Cmd: CmdCommit, Arg: spec.Nil},
		{Cmd: CmdAbort, Arg: spec.Nil},
		{Cmd: CmdVerdict, Arg: spec.Nil},
		{Cmd: CmdPing, Arg: spec.Nil},
	}
	for _, q := range reqs {
		got, err := ParseRequest(AppendRequest(nil, q))
		if err != nil {
			t.Fatalf("%s: %v", q.Cmd, err)
		}
		if got != q {
			t.Fatalf("%s: round trip %+v != %+v", q.Cmd, got, q)
		}
	}
}

func TestRequestRejectsJunk(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"invalid cmd":    {0},
		"unknown cmd":    {99},
		"trailing bytes": append(AppendRequest(nil, Request{Cmd: CmdPing}), 1, 2),
		"truncated access": AppendRequest(nil, Request{
			Cmd: CmdAccess, Obj: "x", Op: spec.OpRead, Arg: spec.Nil})[:3],
		"bad op kind": {byte(CmdAccess), 1, 'x', 200, 0},
	}
	for name, payload := range cases {
		if _, err := ParseRequest(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		cmd  Cmd
		resp Response
	}{
		{CmdBegin, Response{Status: StatusOK, Name: "s1.1", Value: spec.Nil}},
		{CmdChild, Response{Status: StatusOK, Name: "c7", Value: spec.Nil}},
		{CmdAccess, Response{Status: StatusOK, Value: spec.Int(-3)}},
		{CmdAccess, Response{Status: StatusOK, Value: spec.OK}},
		{CmdCommit, Response{Status: StatusOK, Seq: 123456, Value: spec.Nil}},
		{CmdPing, Response{Status: StatusOK, Value: spec.Nil}},
		{CmdAbort, Response{Status: StatusOK, Value: spec.Nil}},
		{CmdVerdict, Response{Status: StatusOK, Value: spec.Nil, Verdict: Verdict{
			Events: 10, Certified: 9, Acyclic: true, Parents: 2, Nodes: 5, Edges: 4,
			Commits: 3, Aborts: 1}}},
		{CmdCommit, Response{Status: StatusTxAborted, Reason: "deadlock victim", Value: spec.Nil}},
		{CmdAccess, Response{Status: StatusError, Reason: "unknown op", Value: spec.Nil}},
	}
	for _, c := range cases {
		got, err := ParseResponse(c.cmd, AppendResponse(nil, c.cmd, c.resp))
		if err != nil {
			t.Fatalf("%s/%s: %v", c.cmd, c.resp.Status, err)
		}
		if got != c.resp {
			t.Fatalf("%s: round trip\n got %+v\nwant %+v", c.cmd, got, c.resp)
		}
	}
}

func TestResponseRejectsJunk(t *testing.T) {
	if _, err := ParseResponse(CmdPing, nil); err == nil {
		t.Error("empty response accepted")
	}
	if _, err := ParseResponse(CmdPing, []byte{99}); err == nil {
		t.Error("unknown status accepted")
	}
	trunc := AppendResponse(nil, CmdVerdict, Response{Status: StatusOK, Value: spec.Nil,
		Verdict: Verdict{Events: 300, Certified: 300}})
	if _, err := ParseResponse(CmdVerdict, trunc[:3]); err == nil {
		t.Error("truncated verdict accepted")
	}
}

func TestNames(t *testing.T) {
	if CmdAccess.String() != "ACCESS" || StatusTxAborted.String() != "TX_ABORTED" {
		t.Fatal("wire names wrong")
	}
	if !strings.Contains(Cmd(200).String(), "200") || !strings.Contains(Status(200).String(), "200") {
		t.Fatal("out-of-range names should include the raw byte")
	}
}
