package wire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"nestedsg/internal/spec"
)

func frameRoundTrip(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteFrame(w, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bufio.NewReader(&buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{{}, {1}, bytes.Repeat([]byte("x"), 4096)} {
		got := frameRoundTrip(t, payload)
		if !bytes.Equal(got, payload) {
			t.Fatalf("frame round trip: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(bufio.NewWriter(&buf), make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted on write")
	}
	// A forged oversized length prefix must be rejected before allocation.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := ReadFrame(bufio.NewReader(&buf), nil); err == nil {
		t.Fatal("oversized length prefix accepted on read")
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteFrame(w, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(short)), nil); err == nil {
		t.Fatal("truncated frame body accepted")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Cmd: CmdBegin, Arg: spec.Nil},
		{Cmd: CmdBegin, Arg: spec.Nil, RO: true},
		{Cmd: CmdChild, Arg: spec.Nil},
		{Cmd: CmdAccess, Obj: "x", Op: spec.OpWrite, Arg: spec.Int(42)},
		{Cmd: CmdAccess, Obj: "long object name", Op: spec.OpRead, Arg: spec.Nil},
		{Cmd: CmdAccess, Obj: "q", Op: spec.OpEnq, Arg: spec.Str("payload")},
		{Cmd: CmdCommit, Arg: spec.Nil},
		{Cmd: CmdAbort, Arg: spec.Nil},
		{Cmd: CmdVerdict, Arg: spec.Nil},
		{Cmd: CmdPing, Arg: spec.Nil},
	}
	for _, q := range reqs {
		got, err := ParseRequest(AppendRequest(nil, q))
		if err != nil {
			t.Fatalf("%s: %v", q.Cmd, err)
		}
		if got != q {
			t.Fatalf("%s: round trip %+v != %+v", q.Cmd, got, q)
		}
	}
}

func TestRequestRejectsJunk(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"invalid cmd":    {0},
		"unknown cmd":    {99},
		"trailing bytes": append(AppendRequest(nil, Request{Cmd: CmdPing}), 1, 2),
		"truncated access": AppendRequest(nil, Request{
			Cmd: CmdAccess, Obj: "x", Op: spec.OpRead, Arg: spec.Nil})[:3],
		"bad op kind":  {byte(CmdAccess), 1, 'x', 200, 0},
		"bad RO flag":  {byte(CmdBegin), 2},
		"RO wrong cmd": append(AppendRequest(nil, Request{Cmd: CmdCommit}), 1),
	}
	for name, payload := range cases {
		if _, err := ParseRequest(payload); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		cmd  Cmd
		resp Response
	}{
		{CmdBegin, Response{Status: StatusOK, Name: "s1.1", Value: spec.Nil}},
		{CmdChild, Response{Status: StatusOK, Name: "c7", Value: spec.Nil}},
		{CmdAccess, Response{Status: StatusOK, Value: spec.Int(-3)}},
		{CmdAccess, Response{Status: StatusOK, Value: spec.OK}},
		{CmdCommit, Response{Status: StatusOK, Seq: 123456, Value: spec.Nil}},
		{CmdPing, Response{Status: StatusOK, Value: spec.Nil}},
		{CmdAbort, Response{Status: StatusOK, Value: spec.Nil}},
		{CmdVerdict, Response{Status: StatusOK, Value: spec.Nil, Verdict: Verdict{
			Events: 10, Certified: 9, Acyclic: true, Parents: 2, Nodes: 5, Edges: 4,
			Commits: 3, Aborts: 1}}},
		{CmdCommit, Response{Status: StatusTxAborted, Reason: "deadlock victim", Value: spec.Nil}},
		{CmdAccess, Response{Status: StatusError, Reason: "unknown op", Value: spec.Nil}},
	}
	for _, c := range cases {
		got, err := ParseResponse(c.cmd, AppendResponse(nil, c.cmd, c.resp))
		if err != nil {
			t.Fatalf("%s/%s: %v", c.cmd, c.resp.Status, err)
		}
		if got != c.resp {
			t.Fatalf("%s: round trip\n got %+v\nwant %+v", c.cmd, got, c.resp)
		}
	}
}

func TestResponseRejectsJunk(t *testing.T) {
	if _, err := ParseResponse(CmdPing, nil); err == nil {
		t.Error("empty response accepted")
	}
	if _, err := ParseResponse(CmdPing, []byte{99}); err == nil {
		t.Error("unknown status accepted")
	}
	trunc := AppendResponse(nil, CmdVerdict, Response{Status: StatusOK, Value: spec.Nil,
		Verdict: Verdict{Events: 300, Certified: 300}})
	if _, err := ParseResponse(CmdVerdict, trunc[:3]); err == nil {
		t.Error("truncated verdict accepted")
	}
}

func TestNames(t *testing.T) {
	if CmdAccess.String() != "ACCESS" || StatusTxAborted.String() != "TX_ABORTED" {
		t.Fatal("wire names wrong")
	}
	if !strings.Contains(Cmd(200).String(), "200") || !strings.Contains(Status(200).String(), "200") {
		t.Fatal("out-of-range names should include the raw byte")
	}
}

// TestReadFrameGeometricGrowth: a long-lived session's reuse buffer must
// settle after O(log peak) reallocations, not reallocate on every upward
// size wobble — each growth at least doubles capacity (floor 64, clamped
// to MaxFrame).
func TestReadFrameGeometricGrowth(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	sizes := make([]int, 0, 600)
	for n := 1; n <= 600; n++ {
		sizes = append(sizes, n)
	}
	for _, n := range sizes {
		if err := WriteFrame(w, make([]byte, n)); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	var reuse []byte
	grows := 0
	for _, n := range sizes {
		prev := cap(reuse)
		got, err := ReadFrame(r, reuse)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("frame %d: got %d bytes", n, len(got))
		}
		reuse = got
		if cap(reuse) != prev {
			grows++
			if prev > 0 && cap(reuse) < 2*prev {
				t.Fatalf("growth %d -> %d is not geometric", prev, cap(reuse))
			}
		}
	}
	// 1..600 with doubling from a floor of 64: 64, 128, 256, 512, 1024.
	if grows > 5 {
		t.Fatalf("%d reallocations across 600 creeping frames, want <= 5", grows)
	}
	// The clamp: a growth triggered near the cap must not exceed MaxFrame.
	buf.Reset()
	if err := WriteFrame(bufio.NewWriter(&buf), make([]byte, MaxFrame)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(bufio.NewReader(&buf), make([]byte, 0, MaxFrame-1))
	if err != nil {
		t.Fatal(err)
	}
	if cap(got) > MaxFrame {
		t.Fatalf("growth overshot the MaxFrame clamp: cap %d", cap(got))
	}
}

// TestHotPathFrameAllocs pins the steady-state allocation count of the
// framed request path at zero: with warmed reuse buffers, write+read+parse
// of a PING request and its response must not allocate. This is the
// per-frame contract the server session loop and client round trip rely on.
func TestHotPathFrameAllocs(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	r := bufio.NewReader(&buf)
	out := make([]byte, 0, 64)
	reuse := make([]byte, 0, 64)
	req := Request{Cmd: CmdPing, Arg: spec.Nil}
	resp := Response{Status: StatusOK, Value: spec.Nil}
	allocs := testing.AllocsPerRun(200, func() {
		buf.Reset()
		out = AppendRequest(out[:0], req)
		if err := WriteFrame(w, out); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(r, reuse)
		if err != nil {
			t.Fatal(err)
		}
		reuse = payload
		if q, err := ParseRequest(payload); err != nil || q.Cmd != CmdPing {
			t.Fatalf("parse request: %+v, %v", q, err)
		}
		buf.Reset()
		out = AppendResponse(out[:0], CmdPing, resp)
		if err := WriteFrame(w, out); err != nil {
			t.Fatal(err)
		}
		if payload, err = ReadFrame(r, reuse); err != nil {
			t.Fatal(err)
		}
		reuse = payload
		if p, err := ParseResponse(CmdPing, payload); err != nil || p.Status != StatusOK {
			t.Fatalf("parse response: %+v, %v", p, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state frame round trip allocates %.1f times, want 0", allocs)
	}
}
