// Package wire defines the length-framed binary protocol spoken between a
// nestedsgd server and its clients.
//
// Every message is one frame: a uvarint payload length followed by the
// payload, capped at MaxFrame. Payloads are built from the NSGB primitives
// exported by internal/event (uvarint-prefixed strings and kind-tagged
// spec.Values), so the module has a single binary encoding of values across
// traces and the network protocol.
//
// A connection carries one session: a strictly alternating sequence of
// request and response frames, where the session's state (the cursor into
// its nested-transaction tree fragment) lives on the server. Requests are:
//
//	BEGIN            open a top-level transaction (child of T0)
//	CHILD            open a subtransaction of the current transaction
//	ACCESS obj op v  run one access as a child of the current transaction
//	COMMIT           commit the current transaction
//	ABORT            abort the current transaction
//	VERDICT          report the server's live certification state
//	PING             no-op round trip
//
// Responses carry a status byte: OK, TX_ABORTED (the server aborted the
// session's whole top-level transaction — deadlock timeout or drain; the
// session is reset to idle and the client should retry the transaction), or
// ERROR (protocol misuse; the transaction state is unchanged).
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"nestedsg/internal/event"
	"nestedsg/internal/spec"
)

// Cmd identifies a request kind.
type Cmd uint8

// Request kinds.
const (
	CmdInvalid Cmd = iota
	CmdBegin
	CmdChild
	CmdAccess
	CmdCommit
	CmdAbort
	CmdVerdict
	CmdPing
)

var cmdNames = [...]string{
	CmdInvalid: "INVALID",
	CmdBegin:   "BEGIN",
	CmdChild:   "CHILD",
	CmdAccess:  "ACCESS",
	CmdCommit:  "COMMIT",
	CmdAbort:   "ABORT",
	CmdVerdict: "VERDICT",
	CmdPing:    "PING",
}

// String returns the wire name of the command.
func (c Cmd) String() string {
	if int(c) < len(cmdNames) {
		return cmdNames[c]
	}
	return fmt.Sprintf("Cmd(%d)", uint8(c))
}

// Status is the outcome class of a response.
type Status uint8

// Response statuses.
const (
	// StatusOK: the request succeeded.
	StatusOK Status = iota
	// StatusTxAborted: the server aborted the session's top-level
	// transaction (deadlock timeout, waits-for victim, or drain). The
	// session is idle again; the client should back off and retry.
	StatusTxAborted
	// StatusError: the request was rejected without touching transaction
	// state (protocol misuse, unknown object, draining server).
	StatusError
)

// String returns the wire name of the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusTxAborted:
		return "TX_ABORTED"
	case StatusError:
		return "ERROR"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// MaxFrame bounds a frame payload so a corrupt or adversarial length prefix
// fails fast instead of allocating gigabytes.
const MaxFrame = 1 << 20

// Request is a decoded request frame. Obj, Op and Arg are meaningful only
// for CmdAccess; RO only for CmdBegin.
type Request struct {
	Cmd Cmd
	Obj string
	Op  spec.OpKind
	Arg spec.Value
	// RO asks for a read-only transaction: backends with a snapshot store
	// serve its reads from a certified snapshot without locks; others run
	// it as a normal transaction. Encoded as an optional flag byte after
	// CmdBegin, so old BEGIN frames (no byte) still parse.
	RO bool
}

// Verdict is the server's live certification state, as reported by
// CmdVerdict.
type Verdict struct {
	// Events is the length of the server's event log; Certified is how many
	// of those the online certifier has consumed.
	Events    uint64
	Certified uint64
	// Acyclic reports that every certified prefix has an acyclic SG.
	Acyclic bool
	// Parents, Nodes and Edges are the live SG sizes.
	Parents uint64
	Nodes   uint64
	Edges   uint64
	// Commits and Aborts count completion events in the log.
	Commits uint64
	Aborts  uint64
}

// Response is a decoded response frame. Which payload fields are meaningful
// depends on (Status, request Cmd): Value for ACCESS, Name for BEGIN/CHILD,
// Seq for COMMIT (the certified log index of the COMMIT event), Verdict for
// VERDICT, Reason for TX_ABORTED and ERROR.
type Response struct {
	Status  Status
	Value   spec.Value
	Name    string
	Seq     uint64
	Reason  string
	Verdict Verdict
}

// WriteFrame writes one length-prefixed frame and flushes the writer. The
// length prefix goes out byte-by-byte through the bufio.Writer: a stack
// scratch array passed to Write would escape through the underlying
// io.Writer interface and cost the hot path an allocation per frame.
func WriteFrame(w *bufio.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	n := uint64(len(payload))
	for n >= 0x80 {
		if err := w.WriteByte(byte(n) | 0x80); err != nil {
			return err
		}
		n >>= 7
	}
	if err := w.WriteByte(byte(n)); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// ReadFrame reads one length-prefixed frame into buf (grown as needed) and
// returns the payload slice. io.EOF before the length prefix means a clean
// connection close. Growth is geometric — at least double the old capacity,
// clamped to MaxFrame — so a long-lived session's reuse buffer settles at
// its peak frame size after O(log n) reallocations instead of reallocating
// on every upward size wobble.
func ReadFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	if uint64(cap(buf)) < n {
		newCap := 2 * cap(buf)
		if newCap < 64 {
			newCap = 64
		}
		if uint64(newCap) < n {
			newCap = int(n)
		}
		if newCap > MaxFrame {
			newCap = MaxFrame
		}
		buf = make([]byte, newCap)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: frame body: %w", err)
	}
	return buf, nil
}

// AppendRequest encodes q onto buf.
//
//sgvet:hotpath
func AppendRequest(buf []byte, q Request) []byte {
	buf = append(buf, byte(q.Cmd))
	switch {
	case q.Cmd == CmdAccess:
		buf = event.AppendString(buf, q.Obj)
		buf = binary.AppendUvarint(buf, uint64(q.Op))
		buf = event.AppendValue(buf, q.Arg)
	case q.Cmd == CmdBegin && q.RO:
		buf = append(buf, 1)
	}
	return buf
}

// ParseRequest decodes a request payload. It reads the byte slice directly
// (no intermediate reader), so commands without string payloads parse
// without allocating; an ACCESS request's one allocation is the Obj string.
func ParseRequest(payload []byte) (Request, error) {
	if len(payload) == 0 {
		return Request{}, fmt.Errorf("wire: request cmd: %w", io.ErrUnexpectedEOF)
	}
	cb, rest := payload[0], payload[1:]
	q := Request{Cmd: Cmd(cb), Arg: spec.Nil}
	var err error
	switch q.Cmd {
	case CmdAccess:
		if q.Obj, rest, err = event.CutString(rest, "request obj"); err != nil {
			return Request{}, err
		}
		var opk uint64
		if opk, rest, err = event.CutUvarint(rest, "request op"); err != nil {
			return Request{}, err
		}
		if opk == 0 || spec.OpKind(opk) > spec.OpDeq {
			return Request{}, fmt.Errorf("wire: request has unknown op kind %d", opk)
		}
		q.Op = spec.OpKind(opk)
		if q.Arg, rest, err = event.CutValue(rest, "request arg"); err != nil {
			return Request{}, err
		}
	case CmdBegin:
		// Optional read-only flag byte; absent means read/write.
		if len(rest) > 0 {
			if rest[0] != 1 {
				return Request{}, fmt.Errorf("wire: BEGIN flag byte %d", rest[0])
			}
			q.RO, rest = true, rest[1:]
		}
	case CmdChild, CmdCommit, CmdAbort, CmdVerdict, CmdPing:
		// No payload beyond the command byte.
	case CmdInvalid:
		return Request{}, fmt.Errorf("wire: invalid command byte 0")
	default:
		return Request{}, fmt.Errorf("wire: unknown command byte %d", cb)
	}
	if len(rest) > 0 {
		return Request{}, fmt.Errorf("wire: %d trailing bytes after %s request", len(rest), q.Cmd)
	}
	return q, nil
}

// AppendResponse encodes the response to a cmd request onto buf. The command
// selects which payload fields travel, mirroring ParseResponse.
//
//sgvet:hotpath
func AppendResponse(buf []byte, cmd Cmd, resp Response) []byte {
	buf = append(buf, byte(resp.Status))
	switch resp.Status {
	case StatusTxAborted, StatusError:
		return event.AppendString(buf, resp.Reason)
	case StatusOK:
		// Fall through to the per-command payload below.
	default:
		// Unknown statuses carry no payload; ParseResponse rejects them.
		return buf
	}
	switch cmd {
	case CmdBegin, CmdChild:
		buf = event.AppendString(buf, resp.Name)
	case CmdAccess:
		buf = event.AppendValue(buf, resp.Value)
	case CmdCommit:
		buf = binary.AppendUvarint(buf, resp.Seq)
	case CmdVerdict:
		v := resp.Verdict
		buf = binary.AppendUvarint(buf, v.Events)
		buf = binary.AppendUvarint(buf, v.Certified)
		if v.Acyclic {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, v.Parents)
		buf = binary.AppendUvarint(buf, v.Nodes)
		buf = binary.AppendUvarint(buf, v.Edges)
		buf = binary.AppendUvarint(buf, v.Commits)
		buf = binary.AppendUvarint(buf, v.Aborts)
	case CmdAbort, CmdPing, CmdInvalid:
		// No payload.
	default:
		// Unknown commands have no response payload.
	}
	return buf
}

// ParseResponse decodes the response to a cmd request. Like ParseRequest it
// reads the byte slice directly, so responses without string payloads (PING,
// ACCESS with a scalar value, COMMIT) parse without allocating.
func ParseResponse(cmd Cmd, payload []byte) (Response, error) {
	if len(payload) == 0 {
		return Response{}, fmt.Errorf("wire: response status: %w", io.ErrUnexpectedEOF)
	}
	sb, rest := payload[0], payload[1:]
	resp := Response{Status: Status(sb), Value: spec.Nil}
	var err error
	switch resp.Status {
	case StatusTxAborted, StatusError:
		if resp.Reason, _, err = event.CutString(rest, "response reason"); err != nil {
			return Response{}, err
		}
		return resp, nil
	case StatusOK:
		// Fall through to the per-command payload below.
	default:
		return Response{}, fmt.Errorf("wire: unknown response status %d", sb)
	}
	switch cmd {
	case CmdBegin, CmdChild:
		if resp.Name, rest, err = event.CutString(rest, "response name"); err != nil {
			return Response{}, err
		}
	case CmdAccess:
		if resp.Value, rest, err = event.CutValue(rest, "response value"); err != nil {
			return Response{}, err
		}
	case CmdCommit:
		if resp.Seq, rest, err = event.CutUvarint(rest, "response seq"); err != nil {
			return Response{}, err
		}
	case CmdVerdict:
		v := &resp.Verdict
		if v.Events, rest, err = event.CutUvarint(rest, "response verdict"); err != nil {
			return Response{}, err
		}
		if v.Certified, rest, err = event.CutUvarint(rest, "response verdict"); err != nil {
			return Response{}, err
		}
		if len(rest) == 0 {
			return Response{}, fmt.Errorf("wire: response verdict acyclic: %w", io.ErrUnexpectedEOF)
		}
		v.Acyclic = rest[0] != 0
		rest = rest[1:]
		for _, f := range []*uint64{&v.Parents, &v.Nodes, &v.Edges, &v.Commits, &v.Aborts} {
			if *f, rest, err = event.CutUvarint(rest, "response verdict"); err != nil {
				return Response{}, err
			}
		}
	case CmdAbort, CmdPing, CmdInvalid:
		// No payload.
	default:
		// Unknown commands have no response payload.
	}
	return resp, nil
}
