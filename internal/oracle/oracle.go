// Package oracle implements an independent, brute-force decision procedure
// for the hypothesis of the Serializability Theorem (Theorem 2): does
// *any* suitable sibling order R exist whose per-object views are legal
// serial behaviors?
//
// The serialization-graph checker (internal/core) answers this question
// constructively but conservatively — acyclicity of SG(β) is sufficient,
// not necessary (§1: "the acyclicity of the graphs we construct is merely
// a sufficient condition"). The oracle enumerates candidate sibling orders
// outright, so on small behaviors it can
//
//   - cross-validate the checker's soundness (checker OK ⇒ oracle finds an
//     order — indeed the checker's own certificate), and
//   - measure the checker's conservatism on flagged traces: a cyclic SG(β)
//     whose behavior still admits a suitable order is a conservative
//     rejection (experiment E11).
//
// The search space is the product of permutations of each parent's
// relevant children, so it explodes quickly; Search enforces an explicit
// budget and reports exhaustion distinctly from "no order exists".
package oracle

import (
	"sort"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/simple"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Outcome classifies a search result.
type Outcome uint8

// Search outcomes.
const (
	// Found: a suitable sibling order with legal views exists; the
	// behavior is serially correct for T0 by Theorem 2.
	Found Outcome = iota
	// NoOrder: the search space was exhausted without success — no
	// suitable order exists, so this proof technique cannot certify the
	// behavior (it may still be serially correct for other reasons; the
	// paper's condition is sufficient only).
	NoOrder
	// BudgetExceeded: the candidate budget ran out before exhaustion.
	BudgetExceeded
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case Found:
		return "found"
	case NoOrder:
		return "no-order"
	case BudgetExceeded:
		return "budget-exceeded"
	}
	return "unknown"
}

// Result carries the search outcome and statistics.
type Result struct {
	Outcome Outcome
	// Tried is the number of candidate orders evaluated.
	Tried int
	// Order is a witness order when Outcome == Found.
	Order *core.SiblingOrder
}

// Search enumerates sibling orders for the serial actions of b, bounded by
// budget candidate evaluations (0 means 10000).
func Search(tr *tname.Tree, b event.Behavior, budget int) *Result {
	if budget <= 0 {
		budget = 10000
	}
	serialB := b.Serial()
	vis := simple.VisibleTo(tr, serialB, tname.Root)

	// Gather, per parent, the children that must be ordered: the low
	// transactions of visible events, grouped by parent.
	childSet := make(map[tname.TxID]map[tname.TxID]bool)
	for _, e := range vis {
		low := e.LowTransaction(tr)
		if low == tname.Root {
			continue
		}
		p := tr.Parent(low)
		if childSet[p] == nil {
			childSet[p] = make(map[tname.TxID]bool)
		}
		childSet[p][low] = true
	}
	var parents []tname.TxID
	groups := make([][]tname.TxID, 0, len(childSet))
	for p, kids := range childSet {
		if len(kids) < 2 {
			continue // a single child needs no ordering decision
		}
		list := make([]tname.TxID, 0, len(kids))
		for k := range kids {
			list = append(list, k)
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		parents = append(parents, p)
		groups = append(groups, list)
	}
	// Deterministic parent order.
	idx := make([]int, len(parents))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return parents[idx[i]] < parents[idx[j]] })

	// Visible operations per object, in β order (the view reorders them).
	visibleOps := visibleOperations(tr, serialB, vis)

	res := &Result{}
	assignment := make(map[tname.TxID][]tname.TxID, len(parents))

	var rec func(level int) bool
	rec = func(level int) bool {
		if res.Tried >= budget {
			return false
		}
		if level == len(idx) {
			res.Tried++
			order := core.ForgeOrderForTest(tr, cloneAssignment(assignment))
			if candidateWorks(tr, serialB, vis, visibleOps, order) {
				res.Order = order
				return true
			}
			return false
		}
		g := idx[level]
		perm := make([]tname.TxID, len(groups[g]))
		copy(perm, groups[g])
		var permute func(k int) bool
		permute = func(k int) bool {
			if k == len(perm) {
				assignment[parents[g]] = append([]tname.TxID(nil), perm...)
				return rec(level + 1)
			}
			for i := k; i < len(perm); i++ {
				perm[k], perm[i] = perm[i], perm[k]
				if permute(k + 1) {
					return true
				}
				perm[k], perm[i] = perm[i], perm[k]
				if res.Tried >= budget {
					return false
				}
			}
			return false
		}
		return permute(0)
	}

	if rec(0) {
		res.Outcome = Found
		return res
	}
	if res.Tried >= budget {
		res.Outcome = BudgetExceeded
		return res
	}
	res.Outcome = NoOrder
	return res
}

func cloneAssignment(a map[tname.TxID][]tname.TxID) map[tname.TxID][]tname.TxID {
	out := make(map[tname.TxID][]tname.TxID, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// visibleOperations groups the visible access operations by object.
func visibleOperations(tr *tname.Tree, serialB, vis event.Behavior) map[tname.ObjID][]event.AccessOp {
	out := make(map[tname.ObjID][]event.AccessOp)
	for _, e := range vis {
		if e.Kind == event.RequestCommit && tr.IsAccess(e.Tx) {
			x := tr.AccessObject(e.Tx)
			out[x] = append(out[x], event.AccessOp{Tx: e.Tx, Obj: x,
				OV: spec.OpVal{Op: tr.AccessOp(e.Tx), Val: e.Val}})
		}
	}
	return out
}

// candidateWorks tests one order against Theorem 2's hypotheses:
// suitability (via the §2.3.2 audit) and per-object view legality.
func candidateWorks(tr *tname.Tree, serialB, vis event.Behavior,
	visibleOps map[tname.ObjID][]event.AccessOp, order *core.SiblingOrder) bool {
	for x, ops := range visibleOps {
		sorted := order.SortOps(ops)
		xi := make([]spec.OpVal, len(sorted))
		for i, op := range sorted {
			xi[i] = op.OV
		}
		if ok, _ := spec.IsBehavior(tr.Spec(x), xi); !ok {
			return false
		}
	}
	// Check view legality first (cheap); the suitability audit is
	// quadratic.
	return core.AuditSuitability(tr, serialB, order) == nil
}
