package oracle

import (
	"testing"

	"nestedsg/internal/core"
	"nestedsg/internal/event"
	"nestedsg/internal/generic"
	"nestedsg/internal/locking"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
	"nestedsg/internal/undolog"
	"nestedsg/internal/workload"
)

// TestOracleAgreesWithCheckerOnCorrectRuns: whenever the SG checker
// certifies a behavior, the oracle must find a suitable order too (the
// checker's own certificate is one).
func TestOracleAgreesWithCheckerOnCorrectRuns(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 4, Depth: 1,
			Fanout: 2, Objects: 2, HotProb: 0.6, ParProb: 0.8})
		b, _, err := generic.Run(tr, root, generic.Options{Seed: seed * 3, Protocol: locking.Protocol{}})
		if err != nil {
			t.Fatal(err)
		}
		res := core.Check(tr, b)
		if !res.OK {
			t.Fatalf("seed %d: %s", seed, res.Summary(tr))
		}
		or := Search(tr, b, 50000)
		if or.Outcome != Found {
			t.Fatalf("seed %d: checker OK but oracle outcome %s after %d tries",
				seed, or.Outcome, or.Tried)
		}
	}
}

// TestOracleRejectsTrulyUnserializable: the classic non-serializable
// pattern w1(t1) r(t2) w2(t1) with conflicting edges in both directions
// and order-sensitive values has no suitable order at all.
func TestOracleRejectsTrulyUnserializable(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	t1 := tr.Child(tname.Root, "t1")
	t2 := tr.Child(tname.Root, "t2")
	w1 := tr.Access(t1, "w1", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(1)})
	w1b := tr.Access(t1, "w1b", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(3)})
	r2 := tr.Access(t2, "r2", x, spec.Op{Kind: spec.OpRead})

	ev := event.NewEvent
	evv := event.NewValEvent
	b := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, t1), ev(event.RequestCreate, t2),
		ev(event.Create, t1), ev(event.Create, t2),
		ev(event.RequestCreate, w1), ev(event.Create, w1),
		evv(event.RequestCommit, w1, spec.OK), ev(event.Commit, w1),
		evv(event.ReportCommit, w1, spec.OK),
		ev(event.RequestCreate, r2), ev(event.Create, r2),
		evv(event.RequestCommit, r2, spec.Int(1)), ev(event.Commit, r2), // dirty read of w1
		evv(event.ReportCommit, r2, spec.Int(1)),
		ev(event.RequestCreate, w1b), ev(event.Create, w1b),
		evv(event.RequestCommit, w1b, spec.OK), ev(event.Commit, w1b),
		evv(event.ReportCommit, w1b, spec.OK),
		evv(event.RequestCommit, t1, spec.Nil), ev(event.Commit, t1),
		evv(event.RequestCommit, t2, spec.Nil), ev(event.Commit, t2),
	}
	// The checker flags a cycle.
	res := core.Check(tr, b)
	if res.OK || res.Cycle == nil {
		t.Fatalf("expected cycle: %s", res.Summary(tr))
	}
	// The oracle confirms: no order of t1/t2 makes r2=1 legal (t1 before
	// t2 reads 3; t2 before t1 reads 0).
	or := Search(tr, b, 1000)
	if or.Outcome != NoOrder {
		t.Fatalf("oracle outcome %s, want no-order", or.Outcome)
	}
	// Two top-level orders × two orders of t1's accesses.
	if or.Tried != 4 {
		t.Errorf("tried %d candidates, want 4", or.Tried)
	}
}

// TestOracleFindsOrderWhereSGConservative exhibits the construction's
// incompleteness: reads from two transactions interleaved with writes can
// produce an SG cycle even when some suitable order exists. Example:
// both transactions read the initial value before either writes the same
// value back; β order gives conflict edges both ways, but because the
// writes are *equal*, either serial order is legal.
func TestOracleFindsOrderWhereSGConservative(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	t1 := tr.Child(tname.Root, "t1")
	t2 := tr.Child(tname.Root, "t2")
	r1 := tr.Access(t1, "r1", x, spec.Op{Kind: spec.OpRead})
	w1 := tr.Access(t1, "w1", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(0)})
	r2 := tr.Access(t2, "r2", x, spec.Op{Kind: spec.OpRead})
	w2 := tr.Access(t2, "w2", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(0)})

	ev := event.NewEvent
	evv := event.NewValEvent
	// Interleaving: r1 r2 w1 w2 — edges t1→t2 (r1 before w2) and t2→t1
	// (r2 before w1): a cycle. Yet both writes store 0 (= the initial
	// value), so every read returning 0 is legal in either serial order.
	b := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, t1), ev(event.RequestCreate, t2),
		ev(event.Create, t1), ev(event.Create, t2),
		ev(event.RequestCreate, r1), ev(event.Create, r1),
		evv(event.RequestCommit, r1, spec.Int(0)), ev(event.Commit, r1),
		evv(event.ReportCommit, r1, spec.Int(0)),
		ev(event.RequestCreate, r2), ev(event.Create, r2),
		evv(event.RequestCommit, r2, spec.Int(0)), ev(event.Commit, r2),
		evv(event.ReportCommit, r2, spec.Int(0)),
		ev(event.RequestCreate, w1), ev(event.Create, w1),
		evv(event.RequestCommit, w1, spec.OK), ev(event.Commit, w1),
		evv(event.ReportCommit, w1, spec.OK),
		ev(event.RequestCreate, w2), ev(event.Create, w2),
		evv(event.RequestCommit, w2, spec.OK), ev(event.Commit, w2),
		evv(event.ReportCommit, w2, spec.OK),
		evv(event.RequestCommit, t1, spec.Nil), ev(event.Commit, t1),
		evv(event.RequestCommit, t2, spec.Nil), ev(event.Commit, t2),
	}
	res := core.Check(tr, b)
	if res.OK || res.Cycle == nil {
		t.Fatalf("SG should be cyclic here: %s", res.Summary(tr))
	}
	or := Search(tr, b, 1000)
	if or.Outcome != Found {
		t.Fatalf("oracle outcome %s: a suitable order exists (writes are equal)", or.Outcome)
	}
}

// TestOracleBudget: a zero-progress budget reports exhaustion.
func TestOracleBudget(t *testing.T) {
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 1, TopLevel: 6, Depth: 1,
		Fanout: 3, Objects: 2, HotProb: 0.8})
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 5, Protocol: undolog.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	// Give it almost nothing; enumeration order may still hit the witness
	// order first, so accept Found as long as tries stayed within budget.
	or := Search(tr, b, 1)
	if or.Tried > 1 {
		t.Fatalf("budget exceeded: tried %d", or.Tried)
	}
	if or.Outcome == NoOrder {
		t.Fatal("cannot conclude no-order within a unit budget for this trace")
	}
}

// TestOracleEmptyBehavior: the empty behavior is trivially certified.
func TestOracleEmptyBehavior(t *testing.T) {
	tr := tname.NewTree()
	or := Search(tr, nil, 10)
	if or.Outcome != Found {
		t.Fatalf("outcome %s", or.Outcome)
	}
}

// TestOracleRespectsPrecedes: when external consistency (a report before a
// sibling's request) forces one order, the oracle must find exactly that
// order even though the values allow both.
func TestOracleRespectsPrecedes(t *testing.T) {
	tr := tname.NewTree()
	tr.AddObject("x", spec.Register{})
	t1 := tr.Child(tname.Root, "t1")
	t2 := tr.Child(tname.Root, "t2")
	ev := event.NewEvent
	evv := event.NewValEvent
	b := event.Behavior{
		ev(event.Create, tname.Root),
		ev(event.RequestCreate, t1),
		ev(event.Create, t1),
		evv(event.RequestCommit, t1, spec.Nil),
		ev(event.Commit, t1),
		evv(event.ReportCommit, t1, spec.Nil),
		ev(event.RequestCreate, t2), // requested after t1's report: t1 ≺ t2
		ev(event.Create, t2),
		evv(event.RequestCommit, t2, spec.Nil),
		ev(event.Commit, t2),
		evv(event.ReportCommit, t2, spec.Nil),
	}
	or := Search(tr, b, 100)
	if or.Outcome != Found {
		t.Fatalf("outcome %s", or.Outcome)
	}
	if !or.Order.CompareSiblings(t1, t2) {
		t.Fatal("the found order must respect precedes(β)")
	}
}

// TestOracleDeterministic: equal inputs yield the same outcome and the
// same number of tried candidates.
func TestOracleDeterministic(t *testing.T) {
	tr := tname.NewTree()
	root := workload.Build(tr, workload.Config{Seed: 4, TopLevel: 4, Depth: 1, Fanout: 2,
		Objects: 1, HotProb: 1, ParProb: 0.9})
	b, _, err := generic.Run(tr, root, generic.Options{Seed: 8, Protocol: locking.Protocol{}})
	if err != nil {
		t.Fatal(err)
	}
	a := Search(tr, b, 50000)
	bb := Search(tr, b, 50000)
	if a.Outcome != bb.Outcome || a.Tried != bb.Tried {
		t.Fatalf("nondeterministic: (%s,%d) vs (%s,%d)", a.Outcome, a.Tried, bb.Outcome, bb.Tried)
	}
}

// TestOutcomeString covers the enum rendering.
func TestOutcomeString(t *testing.T) {
	if Found.String() != "found" || NoOrder.String() != "no-order" || BudgetExceeded.String() != "budget-exceeded" {
		t.Error("outcome names wrong")
	}
}
