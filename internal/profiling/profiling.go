// Package profiling provides the shared -cpuprofile/-memprofile plumbing
// for the command-line tools, so perf investigations of the checker and the
// runner need no ad-hoc instrumentation.
package profiling

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpu is non-empty and returns a stop
// function that must be called before exit: it finalizes the CPU profile
// and, when mem is non-empty, writes a heap profile (after a GC, so the
// numbers reflect live data rather than garbage awaiting collection).
func Start(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			return nil, fmt.Errorf("profiling: %w", errors.Join(err, cpuFile.Close()))
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = fmt.Errorf("profiling: %w", err)
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("profiling: %w", err)
				}
				return first
			}
			runtime.GC()
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil && first == nil {
				first = fmt.Errorf("profiling: %w", werr)
			}
		}
		return first
	}, nil
}
