package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty is 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("mean wrong")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("stddev of singleton is 0")
	}
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2.138089935299395) {
		t.Errorf("stddev = %v", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("percentile of empty is 0")
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 25); !almost(got, 2.5) {
		t.Errorf("P25 of {0,10} = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile must not sort its input in place")
	}
}

func TestPercentileBounds(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		p = math.Mod(math.Abs(p), 100)
		got := Percentile(raw, p)
		lo, hi := raw[0], raw[0]
		for _, x := range raw {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("E1: example", "name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("a-much-longer-name", 2.5)
	out := tb.String()
	if !strings.Contains(out, "E1: example") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "a-much-longer-name") || !strings.Contains(out, "2.50") {
		t.Errorf("rows missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and separator have the same width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned header/separator:\n%s", out)
	}
}
