// Package stats provides the small numeric and table-rendering helpers the
// experiment harness uses to report its results.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Table accumulates rows and renders them with aligned columns — the
// experiment harness prints one Table per reproduced "table".
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return sb.String()
}
