package mvto

import (
	"math/rand"
	"testing"

	"nestedsg/internal/core"
	"nestedsg/internal/generic"
	"nestedsg/internal/oracle"
	"nestedsg/internal/serial"
	"nestedsg/internal/simple"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
	"nestedsg/internal/workload"
)

// fixture: two flat transactions over register x.
type fix struct {
	tr             *tname.Tree
	x              tname.ObjID
	t1, t2         tname.TxID
	m              *MVTO
	clock          *Clock
	r1, w1, r2, w2 tname.TxID
}

func newFix(t *testing.T) *fix {
	t.Helper()
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	f := &fix{tr: tr, x: x, clock: NewClock(tr)}
	f.t1 = tr.Child(tname.Root, "t1")
	f.t2 = tr.Child(tname.Root, "t2")
	f.r1 = tr.Access(f.t1, "r1", x, spec.Op{Kind: spec.OpRead})
	f.w1 = tr.Access(f.t1, "w1", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(1)})
	f.r2 = tr.Access(f.t2, "r2", x, spec.Op{Kind: spec.OpRead})
	f.w2 = tr.Access(f.t2, "w2", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(2)})
	f.m = New(tr, x, f.clock)
	return f
}

func TestPathCmp(t *testing.T) {
	cases := []struct {
		a, b Path
		want int
	}{
		{nil, nil, 0},
		{nil, Path{1}, -1},
		{Path{1}, nil, 1},
		{Path{1, 2}, Path{1, 2}, 0},
		{Path{1, 2}, Path{1, 3}, -1},
		{Path{2}, Path{1, 9}, 1},
		{Path{1}, Path{1, 1}, -1}, // a prefix precedes its extensions
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if (Path{1, 2}).String() != "ts.1.2" {
		t.Errorf("String = %s", Path{1, 2})
	}
}

func TestClockAssignsHierarchically(t *testing.T) {
	tr := tname.NewTree()
	a := tr.Child(tname.Root, "a")
	b := tr.Child(tname.Root, "b")
	a1 := tr.Child(a, "a1")
	a2 := tr.Child(a, "a2")
	c := NewClock(tr)
	// First activity order: a2 before a1.
	pa2 := c.PathTS(a2)
	pa1 := c.PathTS(a1)
	pb := c.PathTS(b)
	if pa2.Cmp(pa1) >= 0 {
		t.Errorf("a2 was active first: %v vs %v", pa2, pa1)
	}
	if c.PathTS(a).Cmp(pb) >= 0 {
		t.Errorf("a (assigned via a2) precedes b: %v vs %v", c.PathTS(a), pb)
	}
	if got := c.PathTS(a2); got.Cmp(pa2) != 0 {
		t.Error("timestamps must be stable")
	}
	if len(pa1) != 2 || len(pb) != 1 {
		t.Errorf("path lengths: %v %v", pa1, pb)
	}
}

func TestReadInitialVersion(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.r1)
	v, ok := f.m.TryRequestCommit(f.r1)
	if !ok || v != spec.Int(0) {
		t.Fatalf("read = %v, %v", v, ok)
	}
}

func TestReadSkipsLaterTimestampVersions(t *testing.T) {
	f := newFix(t)
	// t1 first (path ts.1), then t2 (ts.2) writes; t1's read must NOT see
	// t2's version even after t2 commits — multiversion time travel.
	f.m.Create(f.r1) // t1 = ts.1
	f.m.Create(f.w2) // t2 = ts.2
	if _, ok := f.m.TryRequestCommit(f.w2); !ok {
		t.Fatal("w2 grant")
	}
	f.m.InformCommit(f.w2)
	f.m.InformCommit(f.t2)
	v, ok := f.m.TryRequestCommit(f.r1)
	if !ok || v != spec.Int(0) {
		t.Fatalf("t1's read = %v, %v; must see the initial version, not t2's", v, ok)
	}
}

func TestReadWaitsForUncommittedEarlierWriter(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.w1) // t1 = ts.1
	if _, ok := f.m.TryRequestCommit(f.w1); !ok {
		t.Fatal("w1 grant")
	}
	f.m.Create(f.r2) // t2 = ts.2
	if _, ok := f.m.TryRequestCommit(f.r2); ok {
		t.Fatal("r2 must wait for t1's commit chain")
	}
	blk := f.m.Blockers(f.r2)
	if len(blk) != 1 || blk[0] != f.w1 {
		t.Fatalf("blockers = %v", blk)
	}
	f.m.InformCommit(f.w1)
	if _, ok := f.m.TryRequestCommit(f.r2); ok {
		t.Fatal("r2 must also wait for t1 itself")
	}
	f.m.InformCommit(f.t1)
	v, ok := f.m.TryRequestCommit(f.r2)
	if !ok || v != spec.Int(1) {
		t.Fatalf("r2 = %v, %v", v, ok)
	}
}

func TestWriteTooLateDemandsAbort(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.w1) // t1 = ts.1
	f.m.Create(f.r2) // t2 = ts.2
	// t2 reads the initial version before t1 writes.
	if v, ok := f.m.TryRequestCommit(f.r2); !ok || v != spec.Int(0) {
		t.Fatalf("r2 = %v, %v", v, ok)
	}
	// t1's write at ts.1.* is now too late: a ts.2 reader observed ts.0.
	if _, ok := f.m.TryRequestCommit(f.w1); ok {
		t.Fatal("too-late write must not be granted")
	}
	if !f.m.ShouldAbort(f.w1) {
		t.Fatal("ShouldAbort must demand the restart")
	}
	if f.m.ShouldAbort(f.r1) {
		t.Fatal("reads are never too late")
	}
}

func TestOwnWritesVisibleAfterAccessCommit(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.w1)
	if _, ok := f.m.TryRequestCommit(f.w1); !ok {
		t.Fatal("w1 grant")
	}
	f.m.Create(f.r1)
	// Like Moss: a sibling's write becomes visible once the writing access
	// commits (up to their lca, which is t1).
	if _, ok := f.m.TryRequestCommit(f.r1); ok {
		t.Fatal("r1 must wait for w1's commit inform")
	}
	f.m.InformCommit(f.w1)
	v, ok := f.m.TryRequestCommit(f.r1)
	if !ok || v != spec.Int(1) {
		t.Fatalf("own read = %v, %v", v, ok)
	}
}

// TestInnerSiblingIsolation is the regression for the hierarchical scheme:
// a subtransaction that wrote must not observe a sibling's later write.
func TestInnerSiblingIsolation(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	top := tr.Child(tname.Root, "top")
	s1 := tr.Child(top, "s1")
	s2 := tr.Child(top, "s2")
	w35 := tr.Access(s1, "w35", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(35)})
	rd := tr.Access(s1, "rd", x, spec.Op{Kind: spec.OpRead})
	w13 := tr.Access(s2, "w13", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(13)})

	clock := NewClock(tr)
	m := New(tr, x, clock)
	m.Create(w35) // s1 = ts.1.1
	if _, ok := m.TryRequestCommit(w35); !ok {
		t.Fatal("w35 grant")
	}
	m.InformCommit(w35)
	m.Create(w13) // s2 = ts.1.2
	if _, ok := m.TryRequestCommit(w13); !ok {
		t.Fatal("w13 grant")
	}
	m.InformCommit(w13)
	m.InformCommit(s2)
	// rd is in s1 (ts.1.1.*): its candidate is w35 (ts.1.1.1), NOT s2's
	// w13 (ts.1.2.1), which lies above s1's whole interval.
	m.Create(rd)
	v, ok := m.TryRequestCommit(rd)
	if !ok || v != spec.Int(35) {
		t.Fatalf("rd = %v, %v; inner sibling isolation violated", v, ok)
	}
}

func TestAbortDiscardsVersions(t *testing.T) {
	f := newFix(t)
	f.m.Create(f.w1)
	if _, ok := f.m.TryRequestCommit(f.w1); !ok {
		t.Fatal("w1 grant")
	}
	f.m.InformAbort(f.t1)
	if len(f.m.Versions()) != 1 {
		t.Fatalf("versions = %v", f.m.Versions())
	}
	f.m.Create(f.r2)
	if v, ok := f.m.TryRequestCommit(f.r2); !ok || v != spec.Int(0) {
		t.Fatalf("r2 after abort = %v, %v", v, ok)
	}
}

func TestAuditAndPanicOnWrongType(t *testing.T) {
	f := newFix(t)
	if err := f.m.Audit(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-register object must panic")
		}
	}()
	tr := tname.NewTree()
	c := tr.AddObject("c", spec.Counter{})
	New(tr, c, NewClock(tr))
}

// TestMVTORunsAreSeriallyCorrect is the E13 positive claim: generic-system
// runs under MVTO are serially correct for T0 — certified by the
// exhaustive oracle, and witnessed under the oracle's order — even though
// the event-order SG construction may flag them.
func TestMVTORunsAreSeriallyCorrect(t *testing.T) {
	sgFlagged := 0
	for seed := int64(0); seed < 15; seed++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 4, Depth: 1,
			Fanout: 2, Objects: 2, HotProb: 0.8, ParProb: 0.9, ReadRatio: 0.6})
		b, st, err := generic.Run(tr, root, generic.Options{Seed: seed*13 + 5,
			Protocol: NewProtocol(tr), AuditObjects: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := simple.CheckWellFormed(tr, b); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res := core.Check(tr, b)
		if !res.OK {
			sgFlagged++
		}
		or := oracle.Search(tr, b, 500000)
		if or.Outcome != oracle.Found {
			t.Fatalf("seed %d: oracle outcome %s — MVTO run not certifiable (victims=%d, protoAborts=%d)\n%s",
				seed, or.Outcome, st.DeadlockVictims, st.ProtocolAborts, b.Serial().Format(tr))
		}
		gamma, err := serial.Witness(tr, root, b, or.Order)
		if err != nil {
			t.Fatalf("seed %d: witness under oracle order: %v", seed, err)
		}
		if err := serial.Validate(tr, gamma); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	t.Logf("event-order SG checker flagged %d/15 correct MVTO runs (the §7 gap)", sgFlagged)
}

// TestMVTOWithRestarts drives contention heavy enough to force protocol
// aborts and still demands oracle-certified serial correctness.
func TestMVTOWithRestarts(t *testing.T) {
	sawRestart := false
	for seed := int64(0); seed < 20; seed++ {
		tr := tname.NewTree()
		root := workload.Build(tr, workload.Config{Seed: seed, TopLevel: 5, Depth: 0,
			Fanout: 3, Objects: 1, HotProb: 1, ReadRatio: 0.5})
		b, st, err := generic.Run(tr, root, generic.Options{Seed: seed*31 + 1,
			Protocol: NewProtocol(tr)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.ProtocolAborts > 0 {
			sawRestart = true
		}
		or := oracle.Search(tr, b, 500000)
		if or.Outcome != oracle.Found {
			t.Fatalf("seed %d: oracle outcome %s (protoAborts=%d)", seed, or.Outcome, st.ProtocolAborts)
		}
	}
	if !sawRestart {
		t.Error("expected at least one too-late restart across 20 hot seeds")
	}
}

// TestPathCmpProperties: Cmp is a strict total order compatible with
// concatenation (quick-checked over small random paths).
func TestPathCmpProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	randPath := func() Path {
		n := rng.Intn(4)
		p := make(Path, n)
		for i := range p {
			p[i] = int64(rng.Intn(3) + 1)
		}
		return p
	}
	for i := 0; i < 2000; i++ {
		a, b, c := randPath(), randPath(), randPath()
		if a.Cmp(b) != -b.Cmp(a) {
			t.Fatalf("antisymmetry: %v vs %v", a, b)
		}
		if a.Cmp(b) < 0 && b.Cmp(c) < 0 && a.Cmp(c) >= 0 {
			t.Fatalf("transitivity: %v %v %v", a, b, c)
		}
		if a.Cmp(a) != 0 {
			t.Fatalf("reflexivity: %v", a)
		}
	}
}
