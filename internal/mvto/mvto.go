// Package mvto implements a multiversion timestamp-ordering generic object
// for read/write objects, in the style of Reed's hierarchical timestamps —
// the kind of algorithm the paper's conclusion points at: "the classical
// theory has been extended ... to model concurrency control and recovery
// algorithms that use multiple versions ... It should be possible to
// develop techniques based on the model presented in this paper that
// parallel [those]."
//
// Every transaction receives a *path timestamp*: its parent's path
// extended by a per-parent counter assigned on first activity. Path
// timestamps compare lexicographically, so one total order serializes both
// top-level transactions and the siblings inside every subtransaction.
// A version carries its writer's path; a read at path p observes the
// version with the largest path below p, waiting until that version's
// writer has committed up to the least common ancestor (no dirty reads).
// A write at path q is "too late" — and its classical transaction must
// restart — when some reader above q has already observed a version below
// q. Aborted subtrees' versions are discarded.
//
// The point of carrying this protocol in the repository is negative and
// positive at once (experiment E13):
//
//   - the paper's serialization graph SG(β) orders conflicts by *event
//     order*, which multiversion systems deliberately violate, so the
//     checker conservatively flags many perfectly correct MVTO behaviors —
//     exactly the gap §7 concedes;
//   - the exhaustive Theorem-2 oracle (internal/oracle) still certifies
//     them, and the serial witness replays under the oracle's order — the
//     behaviors really are serially correct for T0.
package mvto

import (
	"fmt"
	"sort"
	"sync"

	"nestedsg/internal/object"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Path is a hierarchical timestamp: one counter per tree level below T0.
type Path []int64

// Cmp compares lexicographically; a proper prefix sorts before its
// extensions.
func (p Path) Cmp(q Path) int {
	for i := 0; i < len(p) && i < len(q); i++ {
		switch {
		case p[i] < q[i]:
			return -1
		case p[i] > q[i]:
			return 1
		}
	}
	switch {
	case len(p) < len(q):
		return -1
	case len(p) > len(q):
		return 1
	}
	return 0
}

// String renders the path.
func (p Path) String() string {
	s := "ts"
	for _, c := range p {
		s += fmt.Sprintf(".%d", c)
	}
	return s
}

// Clock assigns path timestamps; one Clock is shared by all objects of a
// system so the serialization order is global. The server drives one
// system's objects from concurrent sessions under per-object mutexes, so
// the clock carries its own lock.
type Clock struct {
	tr *tname.Tree
	// byID switches the per-level component from an arrival-order counter
	// to the transaction's interning ID. Interning order is recorded in the
	// WAL def stream and replayed verbatim, so ID paths are the only
	// assignment that is stable across crash recovery — arrival order at
	// the clock is not, because sessions race on different object mutexes.
	byID bool

	mu      sync.Mutex
	byTx    map[tname.TxID]Path  //sgvet:guardedby mu
	counter map[tname.TxID]int64 //sgvet:guardedby mu
}

// NewClock returns an empty arrival-order clock over the given system type.
func NewClock(tr *tname.Tree) *Clock {
	return &Clock{tr: tr, byTx: make(map[tname.TxID]Path), counter: make(map[tname.TxID]int64)}
}

// NewIDClock returns a clock whose per-level components are the interned
// transaction IDs rather than arrival-order counters. Sibling order is
// first-interning order, which the WAL def stream makes replay-stable.
func NewIDClock(tr *tname.Tree) *Clock {
	c := NewClock(tr)
	c.byID = true
	return c
}

// PathTS returns tx's path timestamp, assigning components (recursively,
// up the ancestor chain) on first use. T0's path is empty.
func (c *Clock) PathTS(tx tname.TxID) Path {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pathTS(tx)
}

// pathTS is PathTS's recursive body.
//
//sgvet:holds c.mu
func (c *Clock) pathTS(tx tname.TxID) Path {
	if tx == tname.Root {
		return nil
	}
	if p, ok := c.byTx[tx]; ok {
		return p
	}
	parent := c.tr.Parent(tx)
	pp := c.pathTS(parent)
	p := make(Path, len(pp)+1)
	copy(p, pp)
	if c.byID {
		p[len(pp)] = int64(tx)
	} else {
		c.counter[parent]++
		p[len(pp)] = c.counter[parent]
	}
	c.byTx[tx] = p
	return p
}

// version is one multiversion entry.
type version struct {
	ts  Path // the writer access's path timestamp
	val spec.Value
	// writer is the access that created the version (None for the initial
	// version).
	writer tname.TxID
	// maxRead is the largest path that has read this version.
	maxRead Path
}

// MVTO is the multiversion timestamp-ordering generic object. It supports
// read/write (register) objects only.
type MVTO struct {
	tr    *tname.Tree
	x     tname.ObjID
	clock *Clock
	// strict restarts any conflicting access that arrives below an already
	// granted one in timestamp order, instead of serving it out of event
	// order. With strict admission every per-object conflict is granted in
	// increasing path order, so each SG(β) conflict edge points from the
	// lower path to the higher one and the certifier's event-order graph is
	// acyclic — the mode the online-certified server runs.
	strict bool

	created         map[tname.TxID]bool
	commitRequested map[tname.TxID]bool
	committed       map[tname.TxID]bool
	// versions is kept sorted by ts; index 0 is the initial value (empty
	// path, smaller than every access path).
	versions []*version
}

// New builds the MVTO object for register x, sharing the given clock.
func New(tr *tname.Tree, x tname.ObjID, clock *Clock) *MVTO {
	if tr.Spec(x).Name() != (spec.Register{}).Name() {
		panic(fmt.Sprintf("mvto: object %s is %s; only read/write objects are supported",
			tr.ObjectLabel(x), tr.Spec(x).Name()))
	}
	init := tr.Spec(x).Init().(spec.Value)
	return &MVTO{
		tr:              tr,
		x:               x,
		clock:           clock,
		created:         make(map[tname.TxID]bool),
		commitRequested: make(map[tname.TxID]bool),
		committed:       make(map[tname.TxID]bool),
		versions:        []*version{{ts: nil, val: init, writer: tname.None}},
	}
}

// NewStrict builds the strict-admission MVTO object for register x (see the
// MVTO.strict field); the server backend uses it with an ID clock.
func NewStrict(tr *tname.Tree, x tname.ObjID, clock *Clock) *MVTO {
	m := New(tr, x, clock)
	m.strict = true
	return m
}

// Create implements object.Generic; the path timestamp is assigned eagerly
// so the serialization order reflects first activity.
func (m *MVTO) Create(t tname.TxID) {
	m.created[t] = true
	m.clock.PathTS(t)
}

// InformCommit implements object.Generic.
func (m *MVTO) InformCommit(t tname.TxID) { m.committed[t] = true }

// InformAbort implements object.Generic: versions written by descendants
// of the aborted transaction disappear.
func (m *MVTO) InformAbort(t tname.TxID) {
	kept := m.versions[:0]
	for _, v := range m.versions {
		if v.writer != tname.None && m.tr.IsDescendant(v.writer, t) {
			continue
		}
		kept = append(kept, v)
	}
	m.versions = kept
}

// candidate returns the version a read at path p must observe: the largest
// version path below p.
func (m *MVTO) candidate(p Path) *version {
	var best *version
	for _, v := range m.versions {
		if v.ts.Cmp(p) < 0 && (best == nil || v.ts.Cmp(best.ts) > 0) {
			best = v
		}
	}
	return best
}

// visibleTo reports whether the version's writer has committed up to the
// least common ancestor with the reader — the paper's visibility notion,
// which is exactly the no-dirty-read ("safe") condition.
func (m *MVTO) visibleTo(v *version, reader tname.TxID) bool {
	if v.writer == tname.None {
		return true
	}
	lca := m.tr.LCA(v.writer, reader)
	for a := v.writer; a != lca; a = m.tr.Parent(a) {
		if !m.committed[a] {
			return false
		}
	}
	return true
}

// writeTooLate reports whether inserting a version at path q would
// invalidate an existing read: some version below q has been read from
// above q.
func (m *MVTO) writeTooLate(q Path) bool {
	for _, v := range m.versions {
		if v.ts.Cmp(q) < 0 && v.maxRead.Cmp(q) > 0 {
			return true
		}
	}
	return false
}

// versionAbove reports whether a version with a path above p exists —
// under strict admission, a conflicting access at p arrived too late.
func (m *MVTO) versionAbove(p Path) bool {
	// versions is sorted by ts; the last entry is the largest.
	return len(m.versions) > 0 && m.versions[len(m.versions)-1].ts.Cmp(p) > 0
}

// tooLate reports whether access t at path p can never be granted and its
// classical transaction must restart.
func (m *MVTO) tooLate(p Path, isRead bool) bool {
	if m.strict && m.versionAbove(p) {
		return true
	}
	return !isRead && m.writeTooLate(p)
}

// TryRequestCommit implements object.Generic.
func (m *MVTO) TryRequestCommit(t tname.TxID) (spec.Value, bool) {
	if !m.created[t] || m.commitRequested[t] {
		return spec.Nil, false
	}
	op := m.tr.AccessOp(t)
	p := m.clock.PathTS(t)
	isRead := spec.IsRead(op)
	if m.tooLate(p, isRead) {
		return spec.Nil, false // ShouldAbort reports the restart
	}
	if isRead {
		v := m.candidate(p)
		if v == nil || !m.visibleTo(v, t) {
			return spec.Nil, false // wait for the writer's commit chain
		}
		if p.Cmp(v.maxRead) > 0 {
			v.maxRead = p
		}
		m.commitRequested[t] = true
		return v.val, true
	}
	// Write access.
	m.versions = append(m.versions, &version{ts: p, val: op.Arg, writer: t})
	sort.SliceStable(m.versions, func(i, j int) bool {
		return m.versions[i].ts.Cmp(m.versions[j].ts) < 0
	})
	m.commitRequested[t] = true
	return spec.OK, true
}

// ShouldAbort implements object.Aborter: an access that arrived too late
// (a late write in classic mode; any late conflicting access in strict
// mode) can never be granted; its classical transaction must restart.
func (m *MVTO) ShouldAbort(t tname.TxID) bool {
	if !m.created[t] || m.commitRequested[t] {
		return false
	}
	return m.tooLate(m.clock.PathTS(t), spec.IsRead(m.tr.AccessOp(t)))
}

// Blockers implements object.Generic: a read waiting for its candidate
// version's commit chain names the writer.
func (m *MVTO) Blockers(t tname.TxID) []tname.TxID {
	if !m.created[t] || m.commitRequested[t] {
		return nil
	}
	if !spec.IsRead(m.tr.AccessOp(t)) {
		return nil
	}
	p := m.clock.PathTS(t)
	v := m.candidate(p)
	if v == nil || m.visibleTo(v, t) {
		return nil
	}
	return []tname.TxID{v.writer}
}

// Audit implements object.Auditor: versions stay sorted by path and the
// initial version survives.
func (m *MVTO) Audit() error {
	if len(m.versions) == 0 || m.versions[0].writer != tname.None {
		return fmt.Errorf("mvto: initial version missing")
	}
	for i := 1; i < len(m.versions); i++ {
		if m.versions[i-1].ts.Cmp(m.versions[i].ts) >= 0 {
			return fmt.Errorf("mvto: versions out of order at %d", i)
		}
	}
	return nil
}

// Versions exposes (path, value) pairs for tests.
func (m *MVTO) Versions() []struct {
	TS  Path
	Val spec.Value
} {
	out := make([]struct {
		TS  Path
		Val spec.Value
	}, len(m.versions))
	for i, v := range m.versions {
		out[i].TS, out[i].Val = v.ts, v.val
	}
	return out
}

// Protocol implements object.Protocol. All objects of one system share one
// clock; construct a fresh Protocol per system with NewProtocol.
type Protocol struct {
	clock  *Clock
	strict bool
}

// NewProtocol returns an MVTO protocol whose objects will share one clock
// over the given system type.
func NewProtocol(tr *tname.Tree) *Protocol { return &Protocol{clock: NewClock(tr)} }

// NewStrictProtocol returns the strict-admission MVTO protocol the server
// runs: conflicts are granted in increasing timestamp order (late arrivals
// restart), and timestamps come from the replay-stable ID clock.
func NewStrictProtocol(tr *tname.Tree) *Protocol {
	return &Protocol{clock: NewIDClock(tr), strict: true}
}

// Name implements object.Protocol.
func (p *Protocol) Name() string {
	if p.strict {
		return "mvto-strict"
	}
	return "mvto"
}

// New implements object.Protocol.
func (p *Protocol) New(tr *tname.Tree, x tname.ObjID) object.Generic {
	if p.strict {
		return NewStrict(tr, x, p.clock)
	}
	return New(tr, x, p.clock)
}
