// Package undolog implements the undo logging object automaton U_X of §6.2
// — the generalization to nested transactions of Weihl's undo-logging
// algorithm — for objects of arbitrary data type.
//
// The automaton keeps the object state as a log of operations (T, v). A
// REQUEST_COMMIT(T, v) is enabled only when
//
//   - perform(operations · (T, v)) is a behavior of S_X (v is obtained by
//     replaying the log and applying the access's operation), and
//   - (T, v) commutes backward with every logged operation (T', v') that
//     has an uncommitted ancestor outside ancestors(T).
//
// INFORM_ABORT removes all operations of descendants of the aborted
// transaction from the log — the "undo". INFORM_COMMIT merely records the
// commit, enlarging the set of operations later accesses need not commute
// with.
package undolog

import (
	"fmt"

	"nestedsg/internal/object"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// entry is one logged operation.
type entry struct {
	tx tname.TxID
	ov spec.OpVal
}

// Undo is the undo logging generic object automaton U_X.
type Undo struct {
	tr *tname.Tree
	x  tname.ObjID
	sp spec.Spec

	created         map[tname.TxID]bool
	commitRequested map[tname.TxID]bool
	committed       map[tname.TxID]bool
	operations      []entry

	// cache of the state reached by replaying operations; invalidated when
	// the log shrinks on INFORM_ABORT.
	cache      spec.State
	cacheValid bool

	// brokenNoUndo disables log erasure on abort (negative control).
	brokenNoUndo bool
	// brokenSkipCommute disables the commutativity gate (negative
	// control): any access whose value replays legally is admitted.
	brokenSkipCommute bool
}

// New builds the faithful U_X automaton for object x.
func New(tr *tname.Tree, x tname.ObjID) *Undo {
	return &Undo{
		tr:              tr,
		x:               x,
		sp:              tr.Spec(x),
		created:         make(map[tname.TxID]bool),
		commitRequested: make(map[tname.TxID]bool),
		committed:       make(map[tname.TxID]bool),
	}
}

// Create implements object.Generic.
func (u *Undo) Create(t tname.TxID) { u.created[t] = true }

// InformCommit implements object.Generic.
func (u *Undo) InformCommit(t tname.TxID) { u.committed[t] = true }

// InformAbort implements object.Generic.
func (u *Undo) InformAbort(t tname.TxID) {
	if u.brokenNoUndo {
		// Negative control: recovery misreads the abort record as a group
		// commit — the aborted subtree's operations stay in the log and
		// every owner on the path is marked committed, so later accesses
		// unblock into the corrupted state.
		u.committed[t] = true
		for _, e := range u.operations {
			if !u.tr.IsDescendant(e.tx, t) {
				continue
			}
			for a := e.tx; a != t; a = u.tr.Parent(a) {
				u.committed[a] = true
			}
		}
		return
	}
	kept := u.operations[:0]
	removed := false
	for _, e := range u.operations {
		if u.tr.IsDescendant(e.tx, t) {
			removed = true
			continue
		}
		kept = append(kept, e)
	}
	u.operations = kept
	if removed {
		u.cacheValid = false
	}
}

// state replays the log (cached).
func (u *Undo) state() spec.State {
	if !u.cacheValid {
		st := u.sp.Init()
		for _, e := range u.operations {
			st, _ = u.sp.Apply(st, e.ov.Op)
		}
		u.cache, u.cacheValid = st, true
	}
	return u.cache
}

// uncommittedOutside reports whether some ancestor of t2 outside
// ancestors(t) is not in committed — i.e. whether the logged operation of
// t2 still belongs to a transaction whose fate t cannot rely on.
func (u *Undo) uncommittedOutside(t2, t tname.TxID) bool {
	lca := u.tr.LCA(t2, t)
	for a := t2; a != lca; a = u.tr.Parent(a) {
		if !u.committed[a] {
			return true
		}
	}
	return false
}

// TryRequestCommit implements object.Generic.
func (u *Undo) TryRequestCommit(t tname.TxID) (spec.Value, bool) {
	if !u.created[t] || u.commitRequested[t] {
		return spec.Nil, false
	}
	op := u.tr.AccessOp(t)
	st, v := u.sp.Apply(u.state(), op)
	ov := spec.OpVal{Op: op, Val: v}
	if !u.brokenSkipCommute {
		for _, e := range u.operations {
			if u.uncommittedOutside(e.tx, t) && u.sp.Conflicts(ov, e.ov) {
				return spec.Nil, false
			}
		}
	}
	u.operations = append(u.operations, entry{tx: t, ov: ov})
	u.cache, u.cacheValid = st, true
	u.commitRequested[t] = true
	return v, true
}

// Blockers implements object.Generic.
func (u *Undo) Blockers(t tname.TxID) []tname.TxID {
	if !u.created[t] || u.commitRequested[t] || u.brokenSkipCommute {
		return nil
	}
	op := u.tr.AccessOp(t)
	_, v := u.sp.Apply(u.state(), op)
	ov := spec.OpVal{Op: op, Val: v}
	var out []tname.TxID
	for _, e := range u.operations {
		if u.uncommittedOutside(e.tx, t) && u.sp.Conflicts(ov, e.ov) {
			out = append(out, e.tx)
		}
	}
	return out
}

// Blocked implements object.BlockChecker: equivalent to
// len(Blockers(t)) > 0, but returns at the first non-commuting uncommitted
// entry without building the list.
func (u *Undo) Blocked(t tname.TxID) bool {
	if !u.created[t] || u.commitRequested[t] || u.brokenSkipCommute {
		return false
	}
	op := u.tr.AccessOp(t)
	_, v := u.sp.Apply(u.state(), op)
	ov := spec.OpVal{Op: op, Val: v}
	for _, e := range u.operations {
		if u.uncommittedOutside(e.tx, t) && u.sp.Conflicts(ov, e.ov) {
			return true
		}
	}
	return false
}

// Audit implements object.Auditor: the cached state must match a fresh
// replay of the log, and perform(operations) must be a behavior of S_X
// (Lemma 21(2) with the empty removal set, a consequence of the
// commutativity gate). Broken variants are exempt.
func (u *Undo) Audit() error {
	if u.brokenNoUndo || u.brokenSkipCommute {
		return nil
	}
	st := u.sp.Init()
	for i, e := range u.operations {
		var v spec.Value
		st, v = u.sp.Apply(st, e.ov.Op)
		if v != e.ov.Val {
			return fmt.Errorf("undolog: log entry %d (%s) is not legal under replay", i, e.ov)
		}
	}
	if u.cacheValid && u.sp.Encode(st) != u.sp.Encode(u.cache) {
		return fmt.Errorf("undolog: cached state diverged from log replay")
	}
	return nil
}

// Log returns a copy of the current operation log; used by tests to check
// Lemmas 20–21.
func (u *Undo) Log() []spec.OpVal {
	out := make([]spec.OpVal, len(u.operations))
	for i, e := range u.operations {
		out[i] = e.ov
	}
	return out
}

// LogTx returns the transactions of the logged operations, in log order.
func (u *Undo) LogTx() []tname.TxID {
	out := make([]tname.TxID, len(u.operations))
	for i, e := range u.operations {
		out[i] = e.tx
	}
	return out
}

// Protocol implements object.Protocol for the faithful undo-log automaton.
type Protocol struct{}

// Name implements object.Protocol.
func (Protocol) Name() string { return "undolog" }

// New implements object.Protocol.
func (Protocol) New(tr *tname.Tree, x tname.ObjID) object.Generic { return New(tr, x) }

// BrokenMode selects a deliberately incorrect variant for experiment E3.
type BrokenMode uint8

// Broken modes.
const (
	// NoUndo records aborts as commits: aborted transactions' effects
	// survive in the log and unblock (and corrupt) later accesses.
	NoUndo BrokenMode = iota
	// SkipCommute admits any access without the backward-commutativity
	// gate: concurrent non-commuting operations interleave freely.
	SkipCommute
)

// BrokenProtocol implements object.Protocol for broken variants.
type BrokenProtocol struct{ Mode BrokenMode }

// Name implements object.Protocol.
func (p BrokenProtocol) Name() string {
	if p.Mode == NoUndo {
		return "undolog-broken-noundo"
	}
	return "undolog-broken-commute"
}

// New implements object.Protocol.
func (p BrokenProtocol) New(tr *tname.Tree, x tname.ObjID) object.Generic {
	u := New(tr, x)
	switch p.Mode {
	case NoUndo:
		u.brokenNoUndo = true
	case SkipCommute:
		u.brokenSkipCommute = true
	}
	return u
}
