package undolog

import (
	"testing"

	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// counterFix: two top-level transactions over one counter.
//
//	t1 ── i1 (inc 5), g1 (get); t2 ── i2 (inc 3), g2 (get)
type counterFix struct {
	tr             *tname.Tree
	c              tname.ObjID
	t1, t2         tname.TxID
	i1, g1, i2, g2 tname.TxID
	u              *Undo
}

func newCounterFix(t *testing.T) *counterFix {
	t.Helper()
	tr := tname.NewTree()
	c := tr.AddObject("c", spec.Counter{})
	f := &counterFix{tr: tr, c: c}
	f.t1 = tr.Child(tname.Root, "t1")
	f.t2 = tr.Child(tname.Root, "t2")
	f.i1 = tr.Access(f.t1, "i1", c, spec.Op{Kind: spec.OpIncrement, Arg: spec.Int(5)})
	f.g1 = tr.Access(f.t1, "g1", c, spec.Op{Kind: spec.OpGet})
	f.i2 = tr.Access(f.t2, "i2", c, spec.Op{Kind: spec.OpIncrement, Arg: spec.Int(3)})
	f.g2 = tr.Access(f.t2, "g2", c, spec.Op{Kind: spec.OpGet})
	f.u = New(tr, c)
	return f
}

func (f *counterFix) respond(t *testing.T, acc tname.TxID) spec.Value {
	t.Helper()
	f.u.Create(acc)
	v, ok := f.u.TryRequestCommit(acc)
	if !ok {
		t.Fatalf("access %s should be enabled", f.tr.Name(acc))
	}
	return v
}

func TestCommutingUpdatesInterleave(t *testing.T) {
	f := newCounterFix(t)
	// Both increments proceed concurrently — no locks, no commits needed —
	// because increments commute backward.
	if v := f.respond(t, f.i1); v != spec.OK {
		t.Errorf("i1 = %s", v)
	}
	if v := f.respond(t, f.i2); v != spec.OK {
		t.Errorf("i2 = %s", v)
	}
	if log := f.u.Log(); len(log) != 2 {
		t.Errorf("log = %v", log)
	}
}

func TestObserverBlockedByUncommittedUpdate(t *testing.T) {
	f := newCounterFix(t)
	f.respond(t, f.i1)
	// g2 would return 5, which does not commute with t1's uncommitted inc.
	f.u.Create(f.g2)
	if _, ok := f.u.TryRequestCommit(f.g2); ok {
		t.Fatal("get must wait for the uncommitted increment")
	}
	blockers := f.u.Blockers(f.g2)
	if len(blockers) != 1 || blockers[0] != f.i1 {
		t.Errorf("blockers = %v", blockers)
	}
	// Same-transaction observer is fine: g1 sees its own sibling's effect
	// only after... g1 is a sibling of i1 under t1, so i1 is NOT visible to
	// g1 until it commits — but commutativity is checked against
	// *uncommitted ancestors outside ancestors(g1)*: i1 itself is such an
	// ancestor (i1 ∉ ancestors(g1)), so g1 blocks too.
	f.u.Create(f.g1)
	if _, ok := f.u.TryRequestCommit(f.g1); ok {
		t.Fatal("sibling get must wait for the uncommitted increment")
	}
	// After i1 commits, g1 unblocks and sees 5.
	f.u.InformCommit(f.i1)
	if v, ok := f.u.TryRequestCommit(f.g1); !ok || v != spec.Int(5) {
		t.Fatalf("g1 = %v, ok=%v", v, ok)
	}
}

func TestGetAfterCommitChain(t *testing.T) {
	f := newCounterFix(t)
	f.respond(t, f.i1)
	f.u.InformCommit(f.i1)
	f.u.InformCommit(f.t1)
	if v := f.respond(t, f.g2); v != spec.Int(5) {
		t.Errorf("g2 = %s, want 5", v)
	}
}

func TestAbortErasesDescendants(t *testing.T) {
	f := newCounterFix(t)
	f.respond(t, f.i1)
	f.u.InformCommit(f.i1)
	f.u.InformAbort(f.t1) // t1 aborts: i1's operation is erased
	if log := f.u.Log(); len(log) != 0 {
		t.Fatalf("log after abort = %v", log)
	}
	if v := f.respond(t, f.g2); v != spec.Int(0) {
		t.Errorf("g2 = %s, want 0 after undo", v)
	}
}

func TestAbortInvalidatesCache(t *testing.T) {
	f := newCounterFix(t)
	f.respond(t, f.i1)
	f.respond(t, f.i2)
	f.u.InformAbort(f.t1)
	// Only i2 remains: a get under t2 must see 3.
	f.u.InformCommit(f.i2)
	if v := f.respond(t, f.g2); v != spec.Int(3) {
		t.Errorf("g2 = %s, want 3", v)
	}
	if txs := f.u.LogTx(); len(txs) != 2 || txs[0] != f.i2 || txs[1] != f.g2 {
		t.Errorf("log txs = %v", txs)
	}
}

func TestUncreatedAndDoubleRespond(t *testing.T) {
	f := newCounterFix(t)
	if _, ok := f.u.TryRequestCommit(f.i1); ok {
		t.Error("respond before CREATE must fail")
	}
	f.respond(t, f.i1)
	if _, ok := f.u.TryRequestCommit(f.i1); ok {
		t.Error("double respond must fail")
	}
	if f.u.Blockers(f.i1) != nil {
		t.Error("responded access has no blockers")
	}
}

func TestRegisterBehavesLikeLocking(t *testing.T) {
	// Register operations never commute (unless both reads), so undo
	// logging degenerates to blocking exactly where Moss blocks.
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	t1 := tr.Child(tname.Root, "t1")
	t2 := tr.Child(tname.Root, "t2")
	w1 := tr.Access(t1, "w1", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(5)})
	r2 := tr.Access(t2, "r2", x, spec.Op{Kind: spec.OpRead})
	u := New(tr, x)
	u.Create(w1)
	if _, ok := u.TryRequestCommit(w1); !ok {
		t.Fatal("w1 enabled")
	}
	u.Create(r2)
	if _, ok := u.TryRequestCommit(r2); ok {
		t.Fatal("r2 must block behind uncommitted write")
	}
	u.InformCommit(w1)
	u.InformCommit(t1)
	if v, ok := u.TryRequestCommit(r2); !ok || v != spec.Int(5) {
		t.Fatalf("r2 = %v after commits", v)
	}
}

func TestAccountWithdrawGate(t *testing.T) {
	// A failed withdrawal commutes with balance but a successful one does
	// not: with an uncommitted deposit in the log, a withdrawal that would
	// succeed must block.
	tr := tname.NewTree()
	a := tr.AddObject("a", spec.Account{})
	t1 := tr.Child(tname.Root, "t1")
	t2 := tr.Child(tname.Root, "t2")
	dep := tr.Access(t1, "dep", a, spec.Op{Kind: spec.OpDeposit, Arg: spec.Int(10)})
	wd := tr.Access(t2, "wd", a, spec.Op{Kind: spec.OpWithdraw, Arg: spec.Int(5)})
	u := New(tr, a)
	u.Create(dep)
	if _, ok := u.TryRequestCommit(dep); !ok {
		t.Fatal("deposit enabled")
	}
	u.Create(wd)
	if _, ok := u.TryRequestCommit(wd); ok {
		t.Fatal("withdrawal depending on an uncommitted deposit must block")
	}
	u.InformCommit(dep)
	u.InformCommit(t1)
	if v, ok := u.TryRequestCommit(wd); !ok || v != spec.Bool(true) {
		t.Fatalf("wd = %v after commit", v)
	}
}

func TestBrokenNoUndo(t *testing.T) {
	f := newCounterFix(t)
	u := BrokenProtocol{Mode: NoUndo}.New(f.tr, f.c).(*Undo)
	u.Create(f.i1)
	if _, ok := u.TryRequestCommit(f.i1); !ok {
		t.Fatal("inc enabled")
	}
	u.InformAbort(f.t1)
	if len(u.Log()) != 1 {
		t.Fatal("broken variant must keep the aborted operation")
	}
}

func TestBrokenSkipCommute(t *testing.T) {
	f := newCounterFix(t)
	u := BrokenProtocol{Mode: SkipCommute}.New(f.tr, f.c).(*Undo)
	u.Create(f.i1)
	if _, ok := u.TryRequestCommit(f.i1); !ok {
		t.Fatal("inc enabled")
	}
	u.Create(f.g2)
	if v, ok := u.TryRequestCommit(f.g2); !ok || v != spec.Int(5) {
		t.Fatalf("broken variant must admit the dirty read: %v %v", v, ok)
	}
	if (BrokenProtocol{Mode: NoUndo}).Name() == (BrokenProtocol{Mode: SkipCommute}).Name() {
		t.Error("broken names must differ")
	}
}

func TestProtocolFactory(t *testing.T) {
	if (Protocol{}).Name() != "undolog" {
		t.Error("protocol name")
	}
	tr := tname.NewTree()
	c := tr.AddObject("c", spec.Counter{})
	if g := (Protocol{}).New(tr, c); g == nil {
		t.Error("factory returned nil")
	}
}
