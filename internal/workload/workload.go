// Package workload generates seeded, parameterized nested-transaction
// programs: the inputs of every experiment in EXPERIMENTS.md.
//
// A workload is a program tree for T0 whose top-level children are the
// classical transactions. Shape (top-level count, nesting depth, fanout),
// data (object count, specification, hot-spot skew, read ratio) and
// behavior (sequential vs parallel children, retry of aborted children,
// value-dependent accesses) are all knobs. Generation is deterministic in
// the seed.
package workload

import (
	"fmt"
	"math/rand"

	"nestedsg/internal/program"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Config parameterizes a workload.
type Config struct {
	// Seed drives generation.
	Seed int64
	// TopLevel is the number of T0 children (classical transactions).
	TopLevel int
	// Depth is the maximum nesting depth below the top level; 0 makes
	// top-level transactions flat sequences of accesses.
	Depth int
	// Fanout is the number of children per composite node.
	Fanout int
	// Objects is the number of objects.
	Objects int
	// SpecName selects the data type for every object ("register",
	// "counter", "account", "set", "appendlog", "queue") or "mixed" to
	// cycle through all of them.
	SpecName string
	// ReadRatio, for register objects, is the fraction of read accesses;
	// other specs use their own operation mix. Negative means default 0.5.
	ReadRatio float64
	// HotProb is the probability that an access targets object 0 instead
	// of a uniformly random object — the contention knob.
	HotProb float64
	// ParProb is the probability that a composite requests its children in
	// parallel rather than sequentially.
	ParProb float64
	// SubProb is the probability that a child of a composite above the
	// depth limit is itself a composite rather than an access.
	SubProb float64
	// RetryProb is the probability that a composite retries an aborted
	// child once.
	RetryProb float64
	// CondProb is the probability that a sequential composite adds a
	// value-dependent access (read something, then write a function of the
	// value) — these make witness replay sensitive to any value drift.
	CondProb float64
	// UpdateOnly restricts accesses to blind updates (writes, inc/dec,
	// deposits, inserts, appends, enqueues) — the pure commuting-update
	// workloads of experiment E4.
	UpdateOnly bool
}

// Default fills zero fields with sensible defaults.
func (c Config) withDefaults() Config {
	if c.TopLevel == 0 {
		c.TopLevel = 6
	}
	if c.Fanout == 0 {
		c.Fanout = 3
	}
	if c.Objects == 0 {
		c.Objects = 4
	}
	if c.SpecName == "" {
		c.SpecName = "register"
	}
	if c.ReadRatio == 0 {
		c.ReadRatio = 0.5
	}
	if c.SubProb == 0 {
		c.SubProb = 0.5
	}
	return c
}

// Build interns the workload's objects into tr and returns the program of
// T0. The same (tr fresh, cfg) pair always yields the same program.
func Build(tr *tname.Tree, cfg Config) *program.Node {
	cfg = cfg.withDefaults()
	g := &gen{tr: tr, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.internObjects()
	root := &program.Node{Label: "T0", Mode: program.Par}
	for i := 0; i < cfg.TopLevel; i++ {
		root.Children = append(root.Children, g.composite(fmt.Sprintf("t%d", i), cfg.Depth))
	}
	return root
}

type gen struct {
	tr   *tname.Tree
	cfg  Config
	rng  *rand.Rand
	objs []tname.ObjID
}

func (g *gen) internObjects() {
	for i := 0; i < g.cfg.Objects; i++ {
		name := g.cfg.SpecName
		if name == "mixed" {
			all := spec.All()
			name = all[i%len(all)].Name()
		}
		sp := spec.ByName(name)
		if sp == nil {
			panic(fmt.Sprintf("workload: unknown spec %q", g.cfg.SpecName))
		}
		g.objs = append(g.objs, g.tr.AddObject(fmt.Sprintf("%s%d", name, i), sp))
	}
}

// pickObj applies the hot-spot skew.
func (g *gen) pickObj() tname.ObjID {
	if g.cfg.HotProb > 0 && g.rng.Float64() < g.cfg.HotProb {
		return g.objs[0]
	}
	return g.objs[g.rng.Intn(len(g.objs))]
}

// pickOp draws an operation for object x, honoring ReadRatio on registers
// and the UpdateOnly restriction everywhere.
func (g *gen) pickOp(x tname.ObjID) spec.Op {
	sp := g.tr.Spec(x)
	if g.cfg.UpdateOnly {
		return updateOp(sp, g.rng.Int63n(8)+1)
	}
	if sp.Name() == "register" {
		if g.rng.Float64() < g.cfg.ReadRatio {
			return spec.Op{Kind: spec.OpRead}
		}
		return spec.Op{Kind: spec.OpWrite, Arg: spec.Int(int64(g.rng.Intn(64)))}
	}
	return sp.RandOp(g.rng)
}

// updateOp returns a blind update for the specification.
func updateOp(sp spec.Spec, arg int64) spec.Op {
	switch sp.Name() {
	case "register":
		return spec.Op{Kind: spec.OpWrite, Arg: spec.Int(arg)}
	case "counter":
		return spec.Op{Kind: spec.OpIncrement, Arg: spec.Int(arg)}
	case "account":
		return spec.Op{Kind: spec.OpDeposit, Arg: spec.Int(arg)}
	case "set":
		return spec.Op{Kind: spec.OpInsert, Arg: spec.Int(arg % 6)}
	case "appendlog":
		return spec.Op{Kind: spec.OpAppend, Arg: spec.Int(arg % 4)}
	case "queue":
		return spec.Op{Kind: spec.OpEnq, Arg: spec.Int(arg % 4)}
	}
	panic("workload: unknown spec " + sp.Name())
}

// composite builds one composite node with depth levels of nesting below.
func (g *gen) composite(label string, depth int) *program.Node {
	mode := program.Seq
	if g.rng.Float64() < g.cfg.ParProb {
		mode = program.Par
	}
	n := &program.Node{Label: label, Mode: mode}
	for i := 0; i < g.cfg.Fanout; i++ {
		childLabel := fmt.Sprintf("%s.%d", label, i)
		if depth > 0 && g.rng.Float64() < g.cfg.SubProb {
			n.Children = append(n.Children, g.composite(childLabel, depth-1))
		} else {
			n.Children = append(n.Children, g.access(childLabel))
		}
	}
	if mode == program.Seq && g.cfg.CondProb > 0 && g.rng.Float64() < g.cfg.CondProb {
		g.addConditional(n, label)
	}
	if g.cfg.RetryProb > 0 && g.rng.Float64() < g.cfg.RetryProb {
		addRetry(n)
	}
	// Commit value: the sum of the integer outcomes of committed children —
	// a symmetric aggregate, so it is independent of report arrival order.
	n.Result = sumOutcomes
	return n
}

func sumOutcomes(ocs []program.Outcome) spec.Value {
	var total int64
	for _, oc := range ocs {
		if oc.Committed && (oc.Val.Kind == spec.VInt || oc.Val.Kind == spec.VBool) {
			total += oc.Val.Int
		}
	}
	return spec.Int(total)
}

// access builds one access leaf.
func (g *gen) access(label string) *program.Node {
	x := g.pickObj()
	return program.Access(label, x, g.pickOp(x))
}

// addConditional appends a read-like access and a dependent follow-up: the
// follow-up's operation argument is computed from the observed value, so a
// single wrong return value anywhere upstream derails the serial witness.
func (g *gen) addConditional(n *program.Node, label string) {
	x := g.pickObj()
	sp := g.tr.Spec(x)
	var probe spec.Op
	switch sp.Name() {
	case "register":
		probe = spec.Op{Kind: spec.OpRead}
	case "counter":
		probe = spec.Op{Kind: spec.OpGet}
	case "account":
		probe = spec.Op{Kind: spec.OpBalance}
	case "set":
		probe = spec.Op{Kind: spec.OpSize}
	case "appendlog":
		probe = spec.Op{Kind: spec.OpLen}
	default:
		return // queue: no read-only probe
	}
	probeNode := program.Access(label+".probe", x, probe)
	n.Children = append(n.Children, probeNode)

	prev := n.OnOutcome
	n.OnOutcome = func(idx int, child *program.Node, oc program.Outcome) []*program.Node {
		var out []*program.Node
		if prev != nil {
			out = prev(idx, child, oc)
		}
		if child == probeNode && oc.Committed {
			arg := oc.Val.Int%16 + 1
			var op spec.Op
			switch sp.Name() {
			case "register":
				op = spec.Op{Kind: spec.OpWrite, Arg: spec.Int(arg)}
			case "counter":
				op = spec.Op{Kind: spec.OpIncrement, Arg: spec.Int(arg)}
			case "account":
				op = spec.Op{Kind: spec.OpDeposit, Arg: spec.Int(arg)}
			case "set":
				op = spec.Op{Kind: spec.OpInsert, Arg: spec.Int(arg % 6)}
			case "appendlog":
				op = spec.Op{Kind: spec.OpAppend, Arg: spec.Int(arg % 4)}
			}
			out = append(out, program.Access(fmt.Sprintf("%s.dep%d", label, arg), x, op))
		}
		return out
	}
}

// addRetry wraps the node's OnOutcome so each statically declared child
// that aborts is retried exactly once under a derived label.
func addRetry(n *program.Node) {
	static := make(map[*program.Node]bool, len(n.Children))
	for _, c := range n.Children {
		static[c] = true
	}
	prev := n.OnOutcome
	n.OnOutcome = func(idx int, child *program.Node, oc program.Outcome) []*program.Node {
		var out []*program.Node
		if prev != nil {
			out = prev(idx, child, oc)
		}
		if !oc.Committed && static[child] {
			retry := cloneWithLabel(child, child.Label+"~r")
			out = append(out, retry)
		}
		return out
	}
}

// cloneWithLabel deep-copies a node tree, relabeling the root.
func cloneWithLabel(n *program.Node, label string) *program.Node {
	c := *n
	c.Label = label
	c.Children = make([]*program.Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = cloneWithLabel(ch, ch.Label)
	}
	return &c
}
