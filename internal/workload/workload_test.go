package workload

import (
	"fmt"
	"testing"

	"nestedsg/internal/program"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

func TestBuildIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 9, TopLevel: 5, Depth: 2, Fanout: 3, Objects: 3, ParProb: 0.5, SpecName: "mixed"}
	tr1 := tname.NewTree()
	r1 := Build(tr1, cfg)
	tr2 := tname.NewTree()
	r2 := Build(tr2, cfg)
	if !sameShape(r1, r2) {
		t.Fatal("same config must build the same program")
	}
	if tr1.NumObjects() != tr2.NumObjects() {
		t.Fatal("object counts differ")
	}
}

func sameShape(a, b *program.Node) bool {
	if a.Label != b.Label || a.IsAccess != b.IsAccess || a.Mode != b.Mode ||
		a.Obj != b.Obj || a.Op != b.Op || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !sameShape(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func TestBuildValidates(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tr := tname.NewTree()
		root := Build(tr, Config{Seed: seed, TopLevel: 4, Depth: 3, Fanout: 3,
			Objects: 3, ParProb: 0.5, RetryProb: 0.5, CondProb: 0.5, SpecName: "mixed"})
		if err := program.Validate(root); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestTopLevelCount(t *testing.T) {
	tr := tname.NewTree()
	root := Build(tr, Config{Seed: 1, TopLevel: 7})
	if len(root.Children) != 7 {
		t.Fatalf("top-level = %d", len(root.Children))
	}
	if root.Mode != program.Par {
		t.Error("T0 requests top-level transactions in parallel")
	}
}

func TestDepthBound(t *testing.T) {
	tr := tname.NewTree()
	root := Build(tr, Config{Seed: 3, TopLevel: 3, Depth: 2, Fanout: 3, SubProb: 1})
	var maxDepth func(n *program.Node) int
	maxDepth = func(n *program.Node) int {
		d := 0
		for _, c := range n.Children {
			if dc := maxDepth(c) + 1; dc > d {
				d = dc
			}
		}
		return d
	}
	// Root → top-level → up to Depth more levels of composites → access.
	if got := maxDepth(root); got > 2+2+1 {
		t.Errorf("tree too deep: %d", got)
	}
}

func TestDepthZeroIsFlat(t *testing.T) {
	tr := tname.NewTree()
	root := Build(tr, Config{Seed: 2, TopLevel: 3, Depth: 0, Fanout: 4})
	for _, tl := range root.Children {
		for _, c := range tl.Children {
			if !c.IsAccess {
				t.Fatalf("depth 0 must yield flat transactions; %s is composite", c.Label)
			}
		}
	}
}

func TestHotSpotSkew(t *testing.T) {
	tr := tname.NewTree()
	root := Build(tr, Config{Seed: 4, TopLevel: 20, Depth: 0, Fanout: 5, Objects: 8, HotProb: 0.9})
	counts := map[tname.ObjID]int{}
	total := 0
	var walk func(n *program.Node)
	walk = func(n *program.Node) {
		if n.IsAccess {
			counts[n.Obj]++
			total++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if total == 0 {
		t.Fatal("no accesses generated")
	}
	if frac := float64(counts[0]) / float64(total); frac < 0.7 {
		t.Errorf("hot object got %.2f of accesses, want most", frac)
	}
}

func TestReadRatio(t *testing.T) {
	tr := tname.NewTree()
	root := Build(tr, Config{Seed: 5, TopLevel: 30, Depth: 0, Fanout: 5, ReadRatio: 0.9})
	reads, writes := 0, 0
	var walk func(n *program.Node)
	walk = func(n *program.Node) {
		if n.IsAccess {
			if n.Op.Kind == spec.OpRead {
				reads++
			} else {
				writes++
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if reads <= writes*3 {
		t.Errorf("reads=%d writes=%d with ReadRatio 0.9", reads, writes)
	}
}

func TestMixedSpecsCycleThroughAll(t *testing.T) {
	tr := tname.NewTree()
	Build(tr, Config{Seed: 6, Objects: 6, SpecName: "mixed"})
	seen := map[string]bool{}
	for x := tname.ObjID(0); int(x) < tr.NumObjects(); x++ {
		seen[tr.Spec(x).Name()] = true
	}
	if len(seen) != 6 {
		t.Errorf("mixed objects cover %d specs, want 6", len(seen))
	}
}

func TestUnknownSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr := tname.NewTree()
	Build(tr, Config{Seed: 1, SpecName: "martian"})
}

func TestSumOutcomesSymmetric(t *testing.T) {
	ocs := []program.Outcome{
		{Committed: true, Val: spec.Int(3)},
		{Committed: false, Val: spec.Int(100)},
		{Committed: true, Val: spec.Bool(true)},
		{Committed: true, Val: spec.OK},
	}
	want := sumOutcomes(ocs)
	// Any permutation gives the same value.
	perm := []program.Outcome{ocs[2], ocs[0], ocs[3], ocs[1]}
	if got := sumOutcomes(perm); got != want {
		t.Errorf("sumOutcomes not symmetric: %s vs %s", got, want)
	}
	if want != spec.Int(4) {
		t.Errorf("sumOutcomes = %s, want 4", want)
	}
}

func TestCloneWithLabel(t *testing.T) {
	orig := program.SeqNode("t", program.Access("a", 0, spec.Op{Kind: spec.OpRead}))
	c := cloneWithLabel(orig, "t~r")
	if c.Label != "t~r" || len(c.Children) != 1 || c.Children[0] == orig.Children[0] {
		t.Error("clone must relabel the root and deep-copy children")
	}
	if c.Children[0].Label != "a" {
		t.Error("child labels preserved")
	}
}

func TestLargeConfigBuilds(t *testing.T) {
	tr := tname.NewTree()
	root := Build(tr, Config{Seed: 7, TopLevel: 50, Depth: 3, Fanout: 4, Objects: 10,
		ParProb: 0.5, SubProb: 0.6, SpecName: "mixed"})
	n := program.CountNodes(root)
	if n < 200 {
		t.Errorf("large config built only %d nodes", n)
	}
	if err := program.Validate(root); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	shapes := map[string]bool{}
	for seed := int64(0); seed < 5; seed++ {
		tr := tname.NewTree()
		root := Build(tr, Config{Seed: seed, TopLevel: 3, Depth: 2, Fanout: 3})
		shapes[fingerprint(root)] = true
	}
	if len(shapes) < 2 {
		t.Error("different seeds should usually build different programs")
	}
}

func fingerprint(n *program.Node) string {
	s := fmt.Sprintf("%s/%v/%d/%v(", n.Label, n.IsAccess, n.Mode, n.Op)
	for _, c := range n.Children {
		s += fingerprint(c) + ","
	}
	return s + ")"
}

// TestUpdateOnly restricts every access to blind updates across all specs.
func TestUpdateOnly(t *testing.T) {
	tr := tname.NewTree()
	root := Build(tr, Config{Seed: 9, TopLevel: 10, Depth: 1, Fanout: 4, Objects: 6,
		SpecName: "mixed", UpdateOnly: true, SubProb: 0.5})
	var walk func(n *program.Node)
	walk = func(n *program.Node) {
		if n.IsAccess {
			sp := tr.Spec(n.Obj)
			if sp.ReadOnly(n.Op) {
				t.Fatalf("UpdateOnly produced read-only op %s on %s", n.Op, sp.Name())
			}
			switch n.Op.Kind {
			case spec.OpWrite, spec.OpIncrement, spec.OpDeposit, spec.OpInsert, spec.OpAppend, spec.OpEnq:
			default:
				t.Fatalf("unexpected update kind %s", n.Op.Kind)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
}
