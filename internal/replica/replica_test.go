package replica

import (
	"testing"

	"nestedsg/internal/generic"
	"nestedsg/internal/harness"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
	"nestedsg/internal/workload"
)

func cfg(n, r, w int, p float64) Config {
	return Config{Copies: n, ReadQuorum: r, WriteQuorum: w, UnavailableProb: p, Seed: 7}
}

func TestConfigValidate(t *testing.T) {
	good := []Config{cfg(1, 1, 1, 0), cfg(3, 2, 2, 0), cfg(5, 3, 3, 0), cfg(5, 2, 4, 0)}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v: %v", c, err)
		}
	}
	bad := []Config{cfg(3, 1, 2, 0), cfg(0, 1, 1, 0), cfg(3, 4, 2, 0), cfg(3, 2, 0, 0)}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v: expected error", c)
		}
	}
}

type fix struct {
	tr     *tname.Tree
	x      tname.ObjID
	t1, t2 tname.TxID
	w1, r2 tname.TxID
	r      *Replicated
}

func newFix(t *testing.T, c Config) *fix {
	t.Helper()
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	f := &fix{tr: tr, x: x}
	f.t1 = tr.Child(tname.Root, "t1")
	f.t2 = tr.Child(tname.Root, "t2")
	f.w1 = tr.Access(f.t1, "w1", x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(5)})
	f.r2 = tr.Access(f.t2, "r2", x, spec.Op{Kind: spec.OpRead})
	f.r = New(tr, x, c)
	return f
}

func TestWriteInstallsIntoQuorumOnTopCommit(t *testing.T) {
	f := newFix(t, cfg(5, 3, 3, 0))
	f.r.Create(f.w1)
	if _, ok := f.r.TryRequestCommit(f.w1); !ok {
		t.Fatal("write grant")
	}
	// Nothing installed while the value is tentative.
	if _, vers := f.r.Copies(); maxOf(vers) != 0 {
		t.Fatal("tentative write must not touch the copies")
	}
	f.r.InformCommit(f.w1) // chain: w1 → t1
	if _, vers := f.r.Copies(); maxOf(vers) != 0 {
		t.Fatal("still tentative at t1")
	}
	f.r.InformCommit(f.t1) // t1 → T0: install
	_, vers := f.r.Copies()
	updated := 0
	for _, v := range vers {
		if v == 1 {
			updated++
		}
	}
	if updated != 3 {
		t.Fatalf("installed on %d copies, want write quorum 3", updated)
	}
	if err := f.r.Audit(); err != nil {
		t.Fatal(err)
	}
	// A later read quorum must see version 1 regardless of which copies
	// were skipped (R+W>N).
	f.r.Create(f.r2)
	if v, ok := f.r.TryRequestCommit(f.r2); !ok || v != spec.Int(5) {
		t.Fatalf("quorum read = %v, %v", v, ok)
	}
}

func maxOf(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestAbortDiscardsTentativeValue(t *testing.T) {
	f := newFix(t, cfg(3, 2, 2, 0))
	f.r.Create(f.w1)
	if _, ok := f.r.TryRequestCommit(f.w1); !ok {
		t.Fatal("write grant")
	}
	f.r.InformAbort(f.t1)
	f.r.Create(f.r2)
	if v, ok := f.r.TryRequestCommit(f.r2); !ok || v != spec.Int(0) {
		t.Fatalf("read after abort = %v, %v; copies must be untouched", v, ok)
	}
	if f.r.Installs != 0 {
		t.Fatal("aborted write must never install")
	}
}

func TestLockDisciplineMatchesMoss(t *testing.T) {
	f := newFix(t, cfg(3, 2, 2, 0))
	f.r.Create(f.w1)
	f.r.Create(f.r2)
	if _, ok := f.r.TryRequestCommit(f.w1); !ok {
		t.Fatal("write grant")
	}
	if _, ok := f.r.TryRequestCommit(f.r2); ok {
		t.Fatal("reader must block behind the uncommitted writer")
	}
	if blk := f.r.Blockers(f.r2); len(blk) != 1 || blk[0] != f.w1 {
		t.Fatalf("blockers = %v", blk)
	}
	f.r.InformCommit(f.w1)
	f.r.InformCommit(f.t1)
	if v, ok := f.r.TryRequestCommit(f.r2); !ok || v != spec.Int(5) {
		t.Fatalf("read = %v, %v", v, ok)
	}
}

func TestUnavailabilityDelaysButResolves(t *testing.T) {
	f := newFix(t, cfg(3, 2, 2, 0.6))
	f.r.Create(f.r2)
	granted := false
	for attempt := 0; attempt < 200 && !granted; attempt++ {
		if v, ok := f.r.TryRequestCommit(f.r2); ok {
			granted = true
			if v != spec.Int(0) {
				t.Fatalf("read = %v", v)
			}
		}
	}
	if !granted {
		t.Fatal("read never assembled a quorum in 200 attempts at p=0.6")
	}
	if f.r.QuorumFailures == 0 {
		t.Log("no quorum failure observed (possible but unlikely at p=0.6)")
	}
}

func TestVersionsIncreaseAcrossWriters(t *testing.T) {
	f := newFix(t, cfg(3, 2, 2, 0))
	w2 := f.tr.Access(f.t2, "w2", f.x, spec.Op{Kind: spec.OpWrite, Arg: spec.Int(9)})
	// t1 writes and fully commits; then t2 writes and fully commits.
	f.r.Create(f.w1)
	f.r.TryRequestCommit(f.w1)
	f.r.InformCommit(f.w1)
	f.r.InformCommit(f.t1)
	f.r.Create(w2)
	if _, ok := f.r.TryRequestCommit(w2); !ok {
		t.Fatal("w2 grant")
	}
	f.r.InformCommit(w2)
	f.r.InformCommit(f.t2)
	_, vers := f.r.Copies()
	if maxOf(vers) != 2 {
		t.Fatalf("max version = %d, want 2", maxOf(vers))
	}
	if err := f.r.Audit(); err != nil {
		t.Fatal(err)
	}
	// A reader now sees 9.
	r3 := f.tr.Access(f.tr.Child(tname.Root, "t3"), "r3", f.x, spec.Op{Kind: spec.OpRead})
	f.r.Create(r3)
	if v, ok := f.r.TryRequestCommit(r3); !ok || v != spec.Int(9) {
		t.Fatalf("read = %v, %v", v, ok)
	}
}

// TestReplicaRunsSeriallyCorrect sweeps quorum configurations and
// availability under the full pipeline: every run must be serially correct
// for T0 with the copies' quorum invariant audited at every step.
func TestReplicaRunsSeriallyCorrect(t *testing.T) {
	configs := []Config{
		cfg(1, 1, 1, 0),   // degenerate single copy
		cfg(3, 2, 2, 0),   // majority quorums
		cfg(3, 2, 2, 0.3), // with failures
		cfg(5, 2, 4, 0.2), // read-optimized
		cfg(5, 4, 2, 0.2), // write-optimized
	}
	for _, c := range configs {
		c := c
		t.Run((Protocol{Cfg: c}).Name(), func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				cc := c
				cc.Seed = seed * 97
				v, err := harness.RunAndCheck(harness.Options{
					Workload: workload.Config{Seed: seed, TopLevel: 5, Depth: 1, Fanout: 3,
						Objects: 2, HotProb: 0.6, ParProb: 0.7},
					Generic: generic.Options{Seed: seed*11 + 1, Protocol: Protocol{Cfg: cc},
						AbortProb: 0.02, MaxAborts: 4, AuditObjects: true},
					ValidateWitness: true,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !v.SeriallyCorrect() {
					t.Fatalf("seed %d: %s", seed, v.Describe())
				}
			}
		})
	}
}

func TestPanicsOnBadConfigOrType(t *testing.T) {
	tr := tname.NewTree()
	x := tr.AddObject("x", spec.Register{})
	assertPanics(t, "bad quorum", func() { New(tr, x, cfg(3, 1, 1, 0)) })
	c := tr.AddObject("c", spec.Counter{})
	assertPanics(t, "bad type", func() { New(tr, c, cfg(3, 2, 2, 0)) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
