// Package replica implements a quorum-replicated read/write object in the
// lineage the paper cites as [6] (Goldman & Lynch, replicated data
// management for nested transactions): the logical object is stored as N
// copies with version numbers; reads collect a read quorum of R copies and
// take the highest version, writes install a new version into a write
// quorum of W copies, and R + W > N guarantees every read quorum
// intersects every write quorum.
//
// Concurrency control and recovery reuse Moss' discipline (§5): accesses
// take read/write locks on the *logical* object, tentative values live on
// the write-lock chain and are discarded when an ancestor aborts; the new
// version is installed into the copies only when the lock chain returns to
// T0 — i.e. when the writing transaction has committed to the top level.
// Copies may be transiently unavailable (a seeded failure process); an
// access that cannot assemble a quorum simply waits and retries.
//
// Compared to [6] this folds the copies inside one generic object rather
// than modeling each copy as a separate object accessed by
// subtransactions; the quorum/version arithmetic and the interaction with
// nested commit/abort are the parts exercised here, and the same
// serialization-graph checker certifies the runs (experiment E14).
package replica

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"nestedsg/internal/object"
	"nestedsg/internal/spec"
	"nestedsg/internal/tname"
)

// Counters aggregates quorum traffic across every object that shares the
// instance. The fields are atomics because the server drives different
// objects under different mutexes; all other Replicated state is guarded by
// the caller's per-object serialization.
type Counters struct {
	QuorumReads  atomic.Int64
	QuorumWrites atomic.Int64
}

// Config sets the replication parameters.
type Config struct {
	// Copies is N, ReadQuorum is R, WriteQuorum is W; R + W must exceed N.
	Copies, ReadQuorum, WriteQuorum int
	// UnavailableProb is the per-attempt probability that a copy does not
	// respond. Quorum assembly retries on later scheduler polls.
	UnavailableProb float64
	// Seed drives the availability process.
	Seed int64
	// Counters, when non-nil, receives one increment per assembled read or
	// write quorum (shared across objects; the server's metrics hook).
	Counters *Counters
}

// Validate checks the quorum arithmetic.
func (c Config) Validate() error {
	if c.Copies <= 0 || c.ReadQuorum <= 0 || c.WriteQuorum <= 0 {
		return fmt.Errorf("replica: quorums must be positive")
	}
	if c.ReadQuorum > c.Copies || c.WriteQuorum > c.Copies {
		return fmt.Errorf("replica: quorum larger than copy count")
	}
	if c.ReadQuorum+c.WriteQuorum <= c.Copies {
		return fmt.Errorf("replica: R+W must exceed N (%d+%d vs %d)",
			c.ReadQuorum, c.WriteQuorum, c.Copies)
	}
	return nil
}

// chainEntry is a tentative (value, version) pair held on the lock chain.
type chainEntry struct {
	val     spec.Value
	version int64
}

// Replicated is the quorum-replicated generic object.
type Replicated struct {
	tr  *tname.Tree
	x   tname.ObjID
	cfg Config
	rng *rand.Rand

	// copies hold the installed (committed-to-T0) state.
	copyVals []spec.Value
	copyVers []int64

	created         map[tname.TxID]bool
	commitRequested map[tname.TxID]bool
	readLockholders map[tname.TxID]bool
	// writeLockholders is the Moss chain; T0's entry is implicit (the
	// installed copies).
	writeLockholders map[tname.TxID]chainEntry

	// stats for the experiment harness.
	QuorumFailures int
	Installs       int
}

// New builds the replicated object for register x.
func New(tr *tname.Tree, x tname.ObjID, cfg Config) *Replicated {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if tr.Spec(x).Name() != (spec.Register{}).Name() {
		panic(fmt.Sprintf("replica: object %s is %s; only read/write objects are supported",
			tr.ObjectLabel(x), tr.Spec(x).Name()))
	}
	init := tr.Spec(x).Init().(spec.Value)
	r := &Replicated{
		tr:  tr,
		x:   x,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed ^ int64(x)<<16)),

		copyVals:         make([]spec.Value, cfg.Copies),
		copyVers:         make([]int64, cfg.Copies),
		created:          make(map[tname.TxID]bool),
		commitRequested:  make(map[tname.TxID]bool),
		readLockholders:  make(map[tname.TxID]bool),
		writeLockholders: make(map[tname.TxID]chainEntry),
	}
	for i := range r.copyVals {
		r.copyVals[i] = init
	}
	return r
}

// availableCopies rolls the failure process and returns the indices of
// responding copies, shuffled.
func (r *Replicated) availableCopies() []int {
	var up []int
	for i := 0; i < r.cfg.Copies; i++ {
		if r.cfg.UnavailableProb <= 0 || r.rng.Float64() >= r.cfg.UnavailableProb {
			up = append(up, i)
		}
	}
	r.rng.Shuffle(len(up), func(i, j int) { up[i], up[j] = up[j], up[i] })
	return up
}

// quorumRead assembles a read quorum and returns the highest-version state,
// or ok=false if too few copies responded.
func (r *Replicated) quorumRead() (spec.Value, int64, bool) {
	up := r.availableCopies()
	if len(up) < r.cfg.ReadQuorum {
		r.QuorumFailures++
		return spec.Nil, 0, false
	}
	q := up[:r.cfg.ReadQuorum]
	bestI := q[0]
	for _, i := range q[1:] {
		if r.copyVers[i] > r.copyVers[bestI] {
			bestI = i
		}
	}
	if r.cfg.Counters != nil {
		r.cfg.Counters.QuorumReads.Add(1)
	}
	return r.copyVals[bestI], r.copyVers[bestI], true
}

// install writes (val, version) into a write quorum; retried until a
// quorum responds (the inform is only processed once a quorum is found, so
// install loops on the failure process — with UnavailableProb < 1 this
// terminates with probability 1, and determinism is preserved because the
// rng is seeded).
func (r *Replicated) install(val spec.Value, version int64) {
	for {
		up := r.availableCopies()
		if len(up) < r.cfg.WriteQuorum {
			r.QuorumFailures++
			continue
		}
		for _, i := range up[:r.cfg.WriteQuorum] {
			r.copyVals[i] = val
			r.copyVers[i] = version
		}
		r.Installs++
		if r.cfg.Counters != nil {
			r.cfg.Counters.QuorumWrites.Add(1)
		}
		return
	}
}

// chainState returns the state visible to a descendant of the whole chain:
// the least (deepest) holder's entry, or a quorum read when only T0 holds.
func (r *Replicated) least() (tname.TxID, bool) {
	var best tname.TxID = tname.None
	bestDepth := -1
	for u := range r.writeLockholders {
		if d := r.tr.Depth(u); d > bestDepth {
			best, bestDepth = u, d
		}
	}
	return best, best != tname.None
}

// Create implements object.Generic.
func (r *Replicated) Create(t tname.TxID) { r.created[t] = true }

// InformCommit implements object.Generic: locks pass to the parent; a
// write-lock entry reaching T0 is installed into a write quorum.
func (r *Replicated) InformCommit(t tname.TxID) {
	if t == tname.Root {
		return
	}
	p := r.tr.Parent(t)
	if e, ok := r.writeLockholders[t]; ok {
		delete(r.writeLockholders, t)
		if p == tname.Root {
			r.install(e.val, e.version)
		} else {
			r.writeLockholders[p] = e
		}
	}
	if r.readLockholders[t] {
		delete(r.readLockholders, t)
		if p != tname.Root {
			r.readLockholders[p] = true
		}
	}
}

// InformAbort implements object.Generic: descendants' locks (and their
// tentative values) are discarded; the copies never saw them.
func (r *Replicated) InformAbort(t tname.TxID) {
	for u := range r.writeLockholders {
		if r.tr.IsDescendant(u, t) {
			delete(r.writeLockholders, u)
		}
	}
	for u := range r.readLockholders {
		if r.tr.IsDescendant(u, t) {
			delete(r.readLockholders, u)
		}
	}
}

// TryRequestCommit implements object.Generic.
func (r *Replicated) TryRequestCommit(t tname.TxID) (spec.Value, bool) {
	if !r.created[t] || r.commitRequested[t] {
		return spec.Nil, false
	}
	op := r.tr.AccessOp(t)
	// Lock admission exactly as Moss.
	for u := range r.writeLockholders {
		if !r.tr.IsAncestor(u, t) {
			return spec.Nil, false
		}
	}
	if spec.IsWrite(op) {
		for u := range r.readLockholders {
			if !r.tr.IsAncestor(u, t) {
				return spec.Nil, false
			}
		}
	}
	// Current state: the deepest chain entry, else a quorum read.
	var (
		cur     spec.Value
		curVer  int64
		haveCur bool
	)
	if least, ok := r.least(); ok {
		e := r.writeLockholders[least]
		cur, curVer, haveCur = e.val, e.version, true
	} else {
		cur, curVer, haveCur = r.quorumRead()
	}
	if !haveCur {
		return spec.Nil, false // no quorum this attempt; retry later
	}
	if spec.IsRead(op) {
		r.commitRequested[t] = true
		r.readLockholders[t] = true
		return cur, true
	}
	r.commitRequested[t] = true
	r.writeLockholders[t] = chainEntry{val: op.Arg, version: curVer + 1}
	return spec.OK, true
}

// Blockers implements object.Generic (lock conflicts only; quorum
// unavailability is transient and resolves by itself).
func (r *Replicated) Blockers(t tname.TxID) []tname.TxID {
	if !r.created[t] || r.commitRequested[t] {
		return nil
	}
	op := r.tr.AccessOp(t)
	var out []tname.TxID
	for u := range r.writeLockholders {
		if !r.tr.IsAncestor(u, t) {
			out = append(out, u)
		}
	}
	if spec.IsWrite(op) {
		for u := range r.readLockholders {
			if !r.tr.IsAncestor(u, t) {
				out = append(out, u)
			}
		}
	}
	return out
}

// Audit implements object.Auditor: the quorum-intersection invariant — the
// highest installed version is present on at least WriteQuorum copies, so
// every read quorum sees it; and the lock chain is totally ordered by
// ancestry.
func (r *Replicated) Audit() error {
	var maxVer int64
	for _, v := range r.copyVers {
		if v > maxVer {
			maxVer = v
		}
	}
	if maxVer > 0 {
		n := 0
		for _, v := range r.copyVers {
			if v == maxVer {
				n++
			}
		}
		if n < r.cfg.WriteQuorum {
			return fmt.Errorf("replica: latest version %d on %d copies, want ≥ %d", maxVer, n, r.cfg.WriteQuorum)
		}
	}
	for u := range r.writeLockholders {
		for w := range r.writeLockholders {
			if !r.tr.IsOrdered(u, w) {
				return fmt.Errorf("replica: write chain broken: %s vs %s", r.tr.Name(u), r.tr.Name(w))
			}
		}
		for w := range r.readLockholders {
			if !r.tr.IsOrdered(u, w) {
				return fmt.Errorf("replica: writer %s unrelated to reader %s", r.tr.Name(u), r.tr.Name(w))
			}
		}
	}
	return nil
}

// Copies exposes (value, version) pairs for tests.
func (r *Replicated) Copies() ([]spec.Value, []int64) {
	vals := append([]spec.Value(nil), r.copyVals...)
	vers := append([]int64(nil), r.copyVers...)
	return vals, vers
}

// Protocol implements object.Protocol.
type Protocol struct {
	Cfg Config
}

// Name implements object.Protocol.
func (p Protocol) Name() string {
	return fmt.Sprintf("replica-n%d-r%d-w%d", p.Cfg.Copies, p.Cfg.ReadQuorum, p.Cfg.WriteQuorum)
}

// New implements object.Protocol.
func (p Protocol) New(tr *tname.Tree, x tname.ObjID) object.Generic {
	return New(tr, x, p.Cfg)
}
