package nestedsg_test

import (
	"testing"

	"nestedsg"
)

// TestPublicAPIRoundTrip exercises the facade exactly the way the README's
// quickstart does: build, run under both protocols, check, witness.
func TestPublicAPIRoundTrip(t *testing.T) {
	for _, proto := range []nestedsg.Protocol{nestedsg.MossLocking(), nestedsg.UndoLogging()} {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			tr := nestedsg.NewTree()
			x := tr.AddObject("x", nestedsg.SpecByName("register"))
			c := tr.AddObject("c", nestedsg.SpecByName("counter"))

			root := nestedsg.Par("T0",
				nestedsg.Seq("writer",
					nestedsg.Access("w", x, nestedsg.WriteOp(7)),
					nestedsg.Access("i", c, nestedsg.IncOp(1)),
				),
				nestedsg.Seq("reader",
					nestedsg.Access("r", x, nestedsg.ReadOp()),
					nestedsg.Access("g", c, nestedsg.GetOp()),
				),
			)

			trace, st, err := nestedsg.Run(tr, root, nestedsg.RunOptions{Seed: 99, Protocol: proto})
			if err != nil {
				t.Fatal(err)
			}
			if st.Accesses != 4 {
				t.Errorf("accesses = %d", st.Accesses)
			}
			res := nestedsg.Check(tr, trace)
			if !res.OK {
				t.Fatalf("check failed: %s", res.Summary(tr))
			}
			if pres := nestedsg.CheckParallel(tr, trace, 4); !pres.OK {
				t.Fatalf("parallel check disagrees: %s", pres.Summary(tr))
			}
			if at, cyc := nestedsg.StreamCheck(tr, trace); at >= 0 {
				t.Fatalf("streaming check rejected a certified trace at %d: %v", at, cyc)
			}
			inc := nestedsg.NewIncrementalChecker(tr)
			for _, e := range trace {
				if cyc := inc.Append(e); cyc != nil {
					t.Fatalf("incremental checker rejected a certified trace: %s", cyc.Format(tr))
				}
			}
			gamma, err := nestedsg.SerialWitness(tr, root, trace, res.Certificate)
			if err != nil {
				t.Fatal(err)
			}
			if err := nestedsg.ValidateSerial(tr, gamma); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunSerialOracle: the serial runner through the facade produces
// checkable behaviors.
func TestRunSerialOracle(t *testing.T) {
	tr := nestedsg.NewTree()
	a := tr.AddObject("acct", nestedsg.SpecByName("account"))
	root := nestedsg.Par("T0",
		nestedsg.Seq("t1", nestedsg.Access("d", a, nestedsg.DepositOp(10))),
		nestedsg.Seq("t2",
			nestedsg.Access("w", a, nestedsg.WithdrawOp(5)),
			nestedsg.Access("b", a, nestedsg.BalanceOp()),
		),
	)
	trace, err := nestedsg.RunSerial(tr, root, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := nestedsg.ValidateSerial(tr, trace); err != nil {
		t.Fatal(err)
	}
	if res := nestedsg.Check(tr, trace); !res.OK {
		t.Fatalf("check: %s", res.Summary(tr))
	}
}

// TestOpConstructors spot-checks every exported op constructor against its
// specification.
func TestOpConstructors(t *testing.T) {
	tr := nestedsg.NewTree()
	cases := []struct {
		specName string
		ops      []nestedsg.Op
	}{
		{"register", []nestedsg.Op{nestedsg.WriteOp(1), nestedsg.ReadOp()}},
		{"counter", []nestedsg.Op{nestedsg.IncOp(2), nestedsg.DecOp(1), nestedsg.GetOp()}},
		{"account", []nestedsg.Op{nestedsg.DepositOp(5), nestedsg.WithdrawOp(3), nestedsg.BalanceOp()}},
		{"set", []nestedsg.Op{nestedsg.InsertOp(1), nestedsg.MemberOp(1), nestedsg.RemoveOp(1), nestedsg.SizeOp()}},
		{"appendlog", []nestedsg.Op{nestedsg.AppendOp(3), nestedsg.LenOp()}},
		{"queue", []nestedsg.Op{nestedsg.EnqOp(1), nestedsg.DeqOp()}},
	}
	for _, c := range cases {
		sp := nestedsg.SpecByName(c.specName)
		if sp == nil {
			t.Fatalf("SpecByName(%q) = nil", c.specName)
		}
		st := sp.Init()
		for _, op := range c.ops {
			st, _ = sp.Apply(st, op) // must not panic: every op is supported
		}
		_ = tr
	}
	if len(nestedsg.Specs()) != 6 {
		t.Errorf("Specs() = %d entries", len(nestedsg.Specs()))
	}
}

// TestValueConstructors checks the exported value helpers.
func TestValueConstructors(t *testing.T) {
	if nestedsg.IntValue(3).Int != 3 {
		t.Error("IntValue")
	}
	if !nestedsg.BoolValue(true).AsBool() {
		t.Error("BoolValue")
	}
	if nestedsg.OKValue().String() != "OK" {
		t.Error("OKValue")
	}
}

// TestExtensionProtocols exercises the quorum-replication and multiversion
// facade constructors end to end.
func TestExtensionProtocols(t *testing.T) {
	t.Run("replication", func(t *testing.T) {
		tr := nestedsg.NewTree()
		x := tr.AddObject("x", nestedsg.SpecByName("register"))
		root := nestedsg.Par("T0",
			nestedsg.Seq("w", nestedsg.Access("wr", x, nestedsg.WriteOp(3))),
			nestedsg.Seq("r", nestedsg.Access("rd", x, nestedsg.ReadOp())),
		)
		trace, _, err := nestedsg.Run(tr, root, nestedsg.RunOptions{
			Seed: 2,
			Protocol: nestedsg.QuorumReplication(nestedsg.ReplicaConfig{
				Copies: 3, ReadQuorum: 2, WriteQuorum: 2, UnavailableProb: 0.2, Seed: 5}),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res := nestedsg.Check(tr, trace); !res.OK {
			t.Fatalf("check: %s", res.Summary(tr))
		}
	})
	t.Run("mvto", func(t *testing.T) {
		tr := nestedsg.NewTree()
		x := tr.AddObject("x", nestedsg.SpecByName("register"))
		root := nestedsg.Par("T0",
			nestedsg.Seq("w", nestedsg.Access("wr", x, nestedsg.WriteOp(3))),
			nestedsg.Seq("r", nestedsg.Access("rd", x, nestedsg.ReadOp())),
		)
		trace, _, err := nestedsg.Run(tr, root, nestedsg.RunOptions{
			Seed: 2, Protocol: nestedsg.MultiversionTimestamps(tr),
		})
		if err != nil {
			t.Fatal(err)
		}
		// MVTO traces need not pass the event-order checker; they must at
		// least be well-formed behaviors with both transactions done.
		commits := trace.CommitSet()
		if len(commits) == 0 {
			t.Fatal("nothing committed")
		}
	})
}

// TestEventKindConstants: the re-exported kinds match the internal ones
// observable through traces.
func TestEventKindConstants(t *testing.T) {
	tr := nestedsg.NewTree()
	x := tr.AddObject("x", nestedsg.SpecByName("register"))
	root := nestedsg.Par("T0", nestedsg.Seq("t", nestedsg.Access("w", x, nestedsg.WriteOp(1))))
	trace, _, err := nestedsg.Run(tr, root, nestedsg.RunOptions{Seed: 1, Protocol: nestedsg.MossLocking()})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range trace {
		switch e.Kind {
		case nestedsg.EventCreate:
			seen["create"] = true
		case nestedsg.EventRequestCreate:
			seen["reqcreate"] = true
		case nestedsg.EventRequestCommit:
			seen["reqcommit"] = true
		case nestedsg.EventCommit:
			seen["commit"] = true
		case nestedsg.EventReportCommit:
			seen["report"] = true
		}
	}
	for _, k := range []string{"create", "reqcreate", "reqcommit", "commit", "report"} {
		if !seen[k] {
			t.Errorf("kind %s not observed", k)
		}
	}
}
